// Package serve is the multi-stream edge serving runtime: one process,
// one resident frozen detector backbone, N cameras. Each stream owns the
// full per-deployment state of Fig. 2(C) — sliding score monitor,
// mission-KG copies with their token banks, continuous adapter, score
// history and FLOPs ledger — while the heavy read-only backbone (joint
// embedding space, GNN dense/BatchNorm layers, temporal transformer,
// decision head) and the worker pool are shared across all streams.
//
// Scoring runs concurrently across streams on the shared pool. Adaptation
// rounds are dispatched asynchronously with snapshot/swap semantics: at
// the trigger frame the stream snapshots its monitor window and its
// scoring state, keeps scoring on the snapshot while the adapter updates
// the live per-stream KGs in the background, and swaps the adapted state
// in at a fixed frame offset (AdaptLagFrames). Because the swap point is
// defined in frames — not wall time — every stream's score trajectory is
// a pure function of its own input and seed: bit-identical at any worker
// count and independent of what other streams are doing, which is what
// the determinism/isolation test suite pins.
package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"edgekg/internal/core"
	"edgekg/internal/flops"
	"edgekg/internal/parallel"
	"edgekg/internal/rng"
	"edgekg/internal/snapshot"
	"edgekg/internal/tensor"
)

// Ledger phase names. They intentionally match the classic single-stream
// edge runtime so cost-table code reads either ledger.
const (
	PhaseScoring    = "scoring"
	PhaseAdaptation = "adaptation"
)

// StreamConfig controls one stream's deployment behaviour.
type StreamConfig struct {
	// MonitorN is the monitor's sliding window size (the N of K=|Δm|·N).
	MonitorN int
	// MonitorLag is the t′ reference lag in pushes (sliding mode only).
	MonitorLag int
	// AnchoredReference freezes t′ at the first full window after
	// deployment (see core.NewAnchoredMonitor).
	AnchoredReference bool
	// AdaptEveryFrames is the adaptation cadence: one round per this many
	// processed frames. 0 disables adaptation — the static-KG arm.
	AdaptEveryFrames int
	// Adapt configures the adapter (ignored when adaptation is disabled).
	Adapt core.AdaptConfig
	// Device models energy/latency for the cost report.
	Device flops.DeviceProfile
	// AdaptLagFrames is how many frames the stream keeps scoring on its
	// pre-round state while an adaptation round runs in the background;
	// the round's result is swapped in before frame trigger+lag+1. 0 runs
	// rounds synchronously at the trigger frame — bit-identical to the
	// classic edge.Runtime. The lag should stay below AdaptEveryFrames;
	// an overdue round is force-joined when the next trigger arrives.
	AdaptLagFrames int
	// ScoreHistory keeps the most recent scores for observability
	// (Stream.Scores). 0 disables recording.
	ScoreHistory int
	// EagerClone restores the pre-COW behaviour: every per-stream
	// detector clone (deployment, round snapshot, rehydration) is a full
	// deep copy instead of a lazy copy-on-write alias of the backbone.
	// Scoring is bit-identical either way; eager cloning exists as the
	// reference arm for the memory benchmarks and as an escape hatch. Not
	// part of the checkpoint config pin — a checkpoint taken under either
	// mode restores under the other.
	EagerClone bool
	// Precision selects the stream's scoring width (core.Precision): the
	// zero value defers to EDGEKG_PRECISION and defaults to the bit-exact
	// float64 path; f32 routes ScoreVideo through the reduced-precision
	// engine and narrows the monitor's retained window frames, roughly
	// halving per-stream resident bytes. Not part of the checkpoint
	// config pin — checkpoints store canonical float64 state, so one
	// taken under either width restores under the other.
	Precision core.Precision
}

// DefaultStreamConfig returns the experiment suite's per-stream settings:
// the classic edge runtime configuration plus a quarter-cadence
// adaptation lag.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{
		MonitorN:          64,
		MonitorLag:        32,
		AnchoredReference: true,
		AdaptEveryFrames:  64,
		Adapt:             core.DefaultAdaptConfig(),
		Device:            flops.JetsonClass(),
		AdaptLagFrames:    16,
	}
}

// Result reports one processed frame.
type Result struct {
	// Stream and Seq identify the frame: Seq is its 0-based index within
	// the stream.
	Stream, Seq int
	// Score is the anomaly probability pA ∈ [0,1].
	Score float64
	// Adapt is the report of the adaptation round whose effect became
	// visible at this frame: the round run synchronously at this frame
	// (AdaptLagFrames == 0), or the background round swapped in before
	// this frame was scored. Zero-valued otherwise.
	Adapt core.AdaptReport
	// AdaptApplied is true when Adapt carries a round's report.
	AdaptApplied bool
	// Err reports an adaptation failure (scoring itself does not fail).
	Err error
}

// Stream is one camera's deployment context. It is not safe for
// concurrent use — one goroutine processes a stream's frames in arrival
// order (Server gives each stream its own loop); the concurrency a Stream
// manages internally is the overlap between its own scoring and its own
// background adaptation round.
type Stream struct {
	id      int
	det     *core.Detector // live per-stream state, owned by the adapter
	mon     *core.Monitor
	adapter *core.Adapter
	cfg     StreamConfig
	ledger  *flops.Ledger
	// src is the adapter's random source. When it is a *rng.Source the
	// stream is checkpointable (the state round-trips through Export).
	src rand.Source

	// shared selects the metering mode: nil meters phases exclusively via
	// flops.Count (exact; requires that nothing else computes concurrently,
	// i.e. the classic single-stream synchronous deployment), non-nil
	// reads deltas of the shared process-wide counter around each phase —
	// safe under concurrency, exact whenever phases do not overlap, and an
	// over-attribution (never an undercount) when they do.
	shared *flops.Counter

	// scoreDet is the state frames are scored on: det itself, or a frozen
	// snapshot while a background adaptation round is in flight.
	scoreDet *core.Detector
	pending  *pendingRound

	frames      int
	adaptRounds int
	triggered   int
	pruned      int
	created     int
	scores      []float64
	lastErr     error

	// mem, when set, receives this stream's resident-bytes breakdown
	// after every state change (see Server memory budget).
	mem *flops.MemLedger
	// Spill support: an evicted stream checkpoints its heavy state to
	// spillPath under spillDir and rebuilds it lazily — bit-exactly, via
	// the warm-restart path — at the next frame. rebuild re-clones the
	// shared backbone.
	spillDir  string
	rebuild   func() (*core.Detector, error)
	evicted   bool
	spillPath string
	evictions int
	// spilledPending records that the spill file carries a completed-but-
	// unswapped adaptation round, so Sync knows an evicted stream still
	// has a round to settle (rehydrate + join) — otherwise drain-time
	// stats would miss rounds on evicted streams but not on resident ones.
	spilledPending bool
	// released marks a terminal slot: the stream moved to another worker
	// (migration or failover) and its state was dropped for good. Only the
	// counters and the cost ledger remain readable.
	released bool
}

// pendingRound is one in-flight background adaptation.
type pendingRound struct {
	g         parallel.Group
	swapFrame int // processed-frame count at which the result is due
	rep       core.AdaptReport
	err       error
}

// NewStream deploys one stream context over det. The detector is frozen
// (token banks unfrozen when adaptation is enabled) as a side effect. det
// is used directly — callers wanting per-stream isolation over a shared
// backbone pass a core.Detector.CloneShared copy, which is what Server
// does. src seeds the adapter's randomness; pass a *rng.Source when the
// stream must be checkpointable (Export fails on other source types,
// whose state cannot be captured). shared selects the metering mode (see
// the field doc); exclusive metering is only valid with synchronous
// adaptation, because a background round's flops.Count swap would race
// the scoring meter.
func NewStream(id int, det *core.Detector, cfg StreamConfig, src rand.Source, shared *flops.Counter) (*Stream, error) {
	if cfg.AdaptEveryFrames < 0 {
		return nil, fmt.Errorf("serve: adaptation cadence %d must be ≥0", cfg.AdaptEveryFrames)
	}
	if cfg.AdaptLagFrames < 0 {
		return nil, fmt.Errorf("serve: adaptation lag %d must be ≥0", cfg.AdaptLagFrames)
	}
	if cfg.ScoreHistory < 0 {
		return nil, fmt.Errorf("serve: score history %d must be ≥0", cfg.ScoreHistory)
	}
	if shared == nil && cfg.AdaptLagFrames > 0 {
		return nil, fmt.Errorf("serve: exclusive metering requires synchronous adaptation (AdaptLagFrames 0, got %d)", cfg.AdaptLagFrames)
	}
	var mon *core.Monitor
	var err error
	if cfg.AnchoredReference {
		mon, err = core.NewAnchoredMonitor(cfg.MonitorN)
	} else {
		mon, err = core.NewMonitor(cfg.MonitorN, cfg.MonitorLag)
	}
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	det.SetPrecision(cfg.Precision)
	if cfg.Precision.Resolve() == core.PrecisionF32 {
		mon.SetFrameWidth(tensor.F32)
	}
	st := &Stream{id: id, det: det, mon: mon, cfg: cfg, ledger: flops.NewLedger(), src: src, shared: shared, scoreDet: det}
	if cfg.AdaptEveryFrames > 0 {
		adapter, err := core.NewAdapter(det, cfg.Adapt, rand.New(src))
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		st.adapter = adapter
	} else {
		det.Deploy()
	}
	return st, nil
}

// ID returns the stream's id.
func (st *Stream) ID() int { return st.id }

// Detector returns the stream's live per-stream detector state,
// rehydrating it first if the stream was evicted (nil if rehydration
// fails; the error is retained on Err). While a background round is in
// flight the adapter is mutating it; use Server.Do (or call Sync first)
// before reading token banks or graphs.
func (st *Stream) Detector() *core.Detector {
	if st.released {
		return nil
	}
	if st.evicted {
		if err := st.EnsureResident(); err != nil {
			st.lastErr = err
			return nil
		}
	}
	return st.det
}

// Monitor returns the stream's score monitor, rehydrating an evicted
// stream first (nil if rehydration fails; the error is retained on Err).
func (st *Stream) Monitor() *core.Monitor {
	if st.released {
		return nil
	}
	if st.evicted {
		if err := st.EnsureResident(); err != nil {
			st.lastErr = err
			return nil
		}
	}
	return st.mon
}

// SetMemLedger registers the process-wide memory ledger this stream
// reports its resident-bytes breakdown to after every settled state
// change. Call before the first frame.
func (st *Stream) SetMemLedger(l *flops.MemLedger) {
	st.mem = l
	st.updateMem()
}

// EnableSpill arms eviction: the stream may be asked (Evict) to
// checkpoint its heavy state into dir and release it, rebuilding
// bit-exactly at the next frame. rebuild must return a fresh per-stream
// clone of the same backbone the stream was deployed over.
func (st *Stream) EnableSpill(dir string, rebuild func() (*core.Detector, error)) {
	st.spillDir = dir
	st.rebuild = rebuild
}

// Evicted reports whether the stream's heavy state is currently spilled.
func (st *Stream) Evicted() bool { return st.evicted }

// clone copies the live detector for a scoring snapshot or a pending-round
// restore, in the stream's configured clone mode: lazy copy-on-write by
// default, full deep copy under EagerClone.
func (st *Stream) clone() (*core.Detector, error) {
	if st.cfg.EagerClone {
		return st.det.CloneShared()
	}
	return st.det.CloneCOW()
}

// MemBreakdown computes the stream's current resident-bytes breakdown.
// Zero while evicted. Like every Stream method it must not race the
// processing goroutine.
func (st *Stream) MemBreakdown() flops.MemBreakdown {
	var b flops.MemBreakdown
	if st.evicted || st.released {
		return b
	}
	dm := st.det.Mem()
	b.Banks, b.Graphs = dm.BankOwned, dm.GraphOwned
	b.SharedBanks, b.SharedGraphs = dm.BankShared, dm.GraphShared
	b.Monitor = st.mon.MemBytes()
	if st.adapter != nil {
		b.Adapter = st.adapter.MemBytes()
	}
	// len, not cap: append's growth schedule is an allocator detail that
	// differs between an uninterrupted run and a checkpoint-restored one,
	// and the resident figure must be resume-invariant like every other
	// stat.
	b.History = int64(len(st.scores)) * 8
	if st.pending != nil && st.scoreDet != st.det {
		// The round snapshot's privately-owned pages; pages it still
		// shares with the live detector or the backbone are uncharged.
		pm := st.scoreDet.Mem()
		b.Pending = pm.Owned()
	}
	return b
}

// updateMem reports the current breakdown to the process ledger. Only
// called from points where no background round is mutating the detector
// (before dispatch, after join, after evict or rehydrate), because the
// breakdown walks graph and bank storage.
func (st *Stream) updateMem() {
	if st.mem == nil {
		return
	}
	st.mem.Update(st.id, st.MemBreakdown())
}

// Evict checkpoints the stream's heavy state (detector, monitor, adapter,
// any pending round) to the spill directory and releases it, leaving only
// counters, the score history and the FLOPs ledger resident, so Stats and
// Scores stay cheap. The next frame — or any state accessor — rehydrates
// bit-exactly through the warm-restart path, preserving a pending round's
// swap schedule. No-op when already evicted.
func (st *Stream) Evict() error {
	if st.evicted {
		return nil
	}
	if st.released {
		return fmt.Errorf("serve: stream %d is released; nothing to evict", st.id)
	}
	if st.spillDir == "" || st.rebuild == nil {
		return fmt.Errorf("serve: stream %d has no spill directory configured", st.id)
	}
	ss, err := st.Export()
	if err != nil {
		return fmt.Errorf("serve: evict stream %d: %w", st.id, err)
	}
	cp := snapshot.New(1)
	cp.Streams[0] = *ss
	path := filepath.Join(st.spillDir, fmt.Sprintf("stream-%d.spill.json", st.id))
	if err := snapshot.Save(path, cp); err != nil {
		return fmt.Errorf("serve: evict stream %d: %w", st.id, err)
	}
	st.det, st.scoreDet, st.adapter, st.mon, st.pending = nil, nil, nil, nil, nil
	st.evicted = true
	st.spillPath = path
	st.spilledPending = ss.Pending != nil
	st.evictions++
	st.updateMem()
	return nil
}

// materialize rebuilds an evicted stream's containers over a fresh
// backbone clone, mirroring NewStream. The caller restores checkpointed
// state on top; any randomness consumed during construction is overwritten
// by the checkpoint's recorded RNG state, so rehydration is bit-exact.
func (st *Stream) materialize() error {
	det, err := st.rebuild()
	if err != nil {
		return fmt.Errorf("serve: rehydrate stream %d: %w", st.id, err)
	}
	var mon *core.Monitor
	if st.cfg.AnchoredReference {
		mon, err = core.NewAnchoredMonitor(st.cfg.MonitorN)
	} else {
		mon, err = core.NewMonitor(st.cfg.MonitorN, st.cfg.MonitorLag)
	}
	if err != nil {
		return fmt.Errorf("serve: rehydrate stream %d: %w", st.id, err)
	}
	det.SetPrecision(st.cfg.Precision)
	if st.cfg.Precision.Resolve() == core.PrecisionF32 {
		mon.SetFrameWidth(tensor.F32)
	}
	st.det, st.mon, st.scoreDet = det, mon, det
	if st.cfg.AdaptEveryFrames > 0 {
		adapter, err := core.NewAdapter(det, st.cfg.Adapt, rand.New(st.src))
		if err != nil {
			st.det, st.mon, st.scoreDet = nil, nil, nil
			return fmt.Errorf("serve: rehydrate stream %d: %w", st.id, err)
		}
		st.adapter = adapter
	} else {
		det.Deploy()
	}
	st.evicted = false
	st.spilledPending = false
	return nil
}

// EnsureResident rehydrates an evicted stream from its spill file. No-op
// when resident. On failure the stream keeps the error; scoring surfaces
// it on the next Result.
func (st *Stream) EnsureResident() error {
	if !st.evicted {
		return nil
	}
	if err := st.materialize(); err != nil {
		return err
	}
	cp, err := snapshot.Load(st.spillPath)
	if err != nil {
		return fmt.Errorf("serve: rehydrate stream %d: %w", st.id, err)
	}
	if len(cp.Streams) != 1 {
		return fmt.Errorf("serve: rehydrate stream %d: spill file has %d streams", st.id, len(cp.Streams))
	}
	if err := st.Restore(&cp.Streams[0]); err != nil {
		return fmt.Errorf("serve: rehydrate stream %d: %w", st.id, err)
	}
	os.Remove(st.spillPath)
	st.spillPath = ""
	st.updateMem()
	return nil
}

// Release permanently drops the stream's state: its contents moved to
// another worker (a migrated-away or failed-over slot) and this slot will
// never serve the key again. Unlike Evict nothing is spilled — detector,
// monitor and adapter are discarded, the COW marks the detector placed on
// the shared backbone are rolled back (so the backbone stops paying
// copy-on-write faults for a dead alias), the spill file of an evicted
// stream is deleted, and the memory ledger drops to zero. A released slot
// is terminal: frames and state accessors fail, only the counters, score
// ledger and Stats stay readable. Idempotent.
func (st *Stream) Release() error {
	if st.released {
		return nil
	}
	if st.evicted {
		st.dropSpill()
		st.evicted = false
		st.spilledPending = false
	} else {
		// Settle a background round before tearing down the state it is
		// mutating; the result is discarded, not swapped in.
		if st.pending != nil {
			st.pending.g.Wait()
			st.pending = nil
		}
		if st.scoreDet != nil && st.scoreDet != st.det {
			st.scoreDet.DiscardClone()
		}
		if st.det != nil {
			st.det.DiscardClone()
		}
	}
	st.det, st.scoreDet, st.adapter, st.mon = nil, nil, nil, nil
	st.released = true
	st.updateMem()
	return nil
}

// Released reports whether the stream's state was permanently dropped.
func (st *Stream) Released() bool { return st.released }

// dropSpill deletes the stream's spill file without rehydrating, used by
// Shutdown when a rehydration attempt failed: the state is unrecoverable,
// but the disk must not keep the orphan.
func (st *Stream) dropSpill() {
	if st.spillPath != "" {
		os.Remove(st.spillPath)
		st.spillPath = ""
	}
}

// Adaptive reports whether this stream runs the adaptation loop.
func (st *Stream) Adaptive() bool { return st.adapter != nil }

// Ledger exposes the stream's phase cost ledger.
func (st *Stream) Ledger() *flops.Ledger { return st.ledger }

// Scores returns a copy of the retained score history: the most recent
// min(ScoreHistory, processed) scores (empty when retention is disabled).
func (st *Stream) Scores() []float64 {
	h := st.cfg.ScoreHistory
	// h ≤ 0 disables retention: nothing is ever recorded, and the slice
	// expression below would be out of range for negative h.
	if h <= 0 || len(st.scores) <= h {
		return append([]float64(nil), st.scores...)
	}
	return append([]float64(nil), st.scores[len(st.scores)-h:]...)
}

// meter runs fn and records its cost under phase, in the stream's
// metering mode.
func (st *Stream) meter(phase string, fn func()) {
	if st.shared == nil {
		st.ledger.Meter(phase, fn)
		return
	}
	ops0, bytes0 := st.shared.Ops(), st.shared.Bytes()
	fn()
	st.ledger.Record(phase, st.shared.Ops()-ops0, st.shared.Bytes()-bytes0)
}

// Process scores one incoming frame, updates the monitor, and advances
// the adaptation machinery: swapping in a due background round before
// scoring, and on the cadence either running a round synchronously
// (AdaptLagFrames == 0, the classic edge runtime behaviour) or
// dispatching it asynchronously against a monitor + scoring-state
// snapshot.
func (st *Stream) Process(pix *tensor.Tensor) Result {
	res := Result{Stream: st.id, Seq: st.frames}

	if st.released {
		res.Err = fmt.Errorf("serve: stream %d was released (its state moved to another worker)", st.id)
		return res
	}
	if st.evicted {
		if err := st.EnsureResident(); err != nil {
			st.lastErr = err
			res.Err = err
			return res
		}
	}

	// A finished-or-due round becomes visible before this frame is scored:
	// the swap point is frame-count-defined, so the trajectory does not
	// depend on how fast the background round actually ran.
	if st.pending != nil && st.frames >= st.pending.swapFrame {
		rep, err := st.join()
		res.Adapt, res.AdaptApplied = rep, true
		res.Err = err
	}

	frame := pix.Reshape(1, pix.Size())
	st.meter(PhaseScoring, func() {
		res.Score = st.scoreDet.ScoreVideo(frame)[0]
	})
	st.mon.Push(frame, res.Score)
	st.frames++
	if h := st.cfg.ScoreHistory; h > 0 {
		// Amortised O(1) retention: grow to 2h, then compact the newest
		// h−1 entries to the front — the per-frame copy a strict ring
		// would save is not worth the windowed-read complexity here.
		if len(st.scores) >= 2*h {
			n := copy(st.scores, st.scores[len(st.scores)-h+1:])
			st.scores = st.scores[:n]
		}
		st.scores = append(st.scores, res.Score)
	}

	if st.adapter != nil && st.cfg.AdaptEveryFrames > 0 && st.frames%st.cfg.AdaptEveryFrames == 0 {
		if st.cfg.AdaptLagFrames <= 0 {
			var rep core.AdaptReport
			var err error
			st.meter(PhaseAdaptation, func() {
				rep, err = st.adapter.Step(st.mon)
			})
			res.Adapt, res.AdaptApplied = rep, true
			if err != nil {
				st.lastErr = fmt.Errorf("serve: adaptation round: %w", err)
				res.Err = st.lastErr
				st.updateMem()
				return res
			}
			st.account(rep)
			st.updateMem()
			return res
		}
		// An overdue round (lag ≥ cadence, or a slow consumer) joins
		// before the next one starts; rounds never overlap per stream.
		if st.pending != nil {
			rep, err := st.join()
			res.Adapt, res.AdaptApplied = rep, true
			if res.Err == nil {
				res.Err = err
			}
		}
		st.begin()
	}
	if st.pending == nil && st.mem != nil && st.mem.Budget() > 0 {
		// The eviction policy needs fresh totals after every frame, but
		// the breakdown walks graph and bank storage — unbudgeted servers
		// refresh only at the rarer settled points (attach, round
		// dispatch/join, evict, rehydrate) and Stats computes on demand.
		// While a round is in flight the ledger keeps the pre-round
		// figures — the adapter is mutating the detector concurrently.
		st.updateMem()
	}
	return res
}

// begin snapshots the monitor window and the scoring state and dispatches
// one adaptation round on the worker pool. Scoring continues on the
// snapshot until join. The round is recorded as pending even if the
// snapshot fails (the error surfaces at the swap frame), so every round
// flows through the same join path.
func (st *Stream) begin() {
	p := &pendingRound{swapFrame: st.frames + st.cfg.AdaptLagFrames}
	st.pending = p
	snap, err := st.clone()
	if err != nil {
		p.err = fmt.Errorf("snapshot: %w", err)
		return
	}
	monSnap := st.mon.Clone()
	st.scoreDet = snap
	// Account before dispatch: once the round is running the adapter owns
	// the detector and the breakdown cannot be read safely.
	st.updateMem()
	p.g.Go(func() {
		st.meter(PhaseAdaptation, func() {
			p.rep, p.err = st.adapter.Step(monSnap)
		})
	})
}

// join waits for the in-flight round, swaps the adapted state back into
// the scoring path and accounts the round.
func (st *Stream) join() (core.AdaptReport, error) {
	p := st.pending
	st.pending = nil
	p.g.Wait()
	st.scoreDet = st.det
	if p.err != nil {
		st.lastErr = fmt.Errorf("serve: adaptation round: %w", p.err)
		return p.rep, st.lastErr
	}
	st.account(p.rep)
	return p.rep, nil
}

// Err returns the most recent adaptation-round error (nil when every
// round succeeded). Errors also surface on the Result of the frame that
// joined the failing round, when there was one.
func (st *Stream) Err() error { return st.lastErr }

// account folds one completed round into the stream statistics.
func (st *Stream) account(rep core.AdaptReport) {
	st.adaptRounds++
	if rep.Triggered {
		st.triggered++
	}
	st.pruned += len(rep.Pruned)
	st.created += len(rep.Created)
}

// Sync joins any in-flight adaptation round regardless of its swap frame,
// so the stream's detector state is settled. An evicted stream whose
// spill file carries a completed-but-unswapped round rehydrates first —
// settling must account that round exactly as it would on a resident
// stream. It returns the joined round's error, if any.
func (st *Stream) Sync() error {
	if st.released {
		return nil
	}
	if st.evicted {
		if !st.spilledPending {
			return nil
		}
		if err := st.EnsureResident(); err != nil {
			st.lastErr = err
			return err
		}
	}
	if st.pending == nil {
		return nil
	}
	_, err := st.join()
	return err
}

// Stats summarises the stream for cost tables and dashboards.
type Stats struct {
	Stream           int
	Frames           int
	AdaptRounds      int
	TriggeredRounds  int
	PrunedNodes      int
	CreatedNodes     int
	ScoringOps       int64
	AdaptOps         int64
	AdaptOpsPerRound int64
	// EnergyPerAdaptJ and AdaptLatencyS follow from the device profile.
	EnergyPerAdaptJ float64
	AdaptLatencyS   float64
	// ResidentBytes is the memory charged to the stream (zero while its
	// state is spilled); Evictions counts spill round-trips.
	ResidentBytes int64
	Evictions     int
	// LastErr is the text of the stream's most recent retained error —
	// a failed adaptation round, background eviction or rehydration —
	// empty when everything succeeded. Background eviction failures have
	// no Result to surface on, so this field is where they become loud.
	LastErr string
}

// configPin summarises the stream's configuration for checkpoint
// validation.
func (st *Stream) configPin() snapshot.ConfigPin {
	return snapshot.ConfigPin{
		MonitorN:          st.cfg.MonitorN,
		MonitorLag:        st.cfg.MonitorLag,
		AnchoredReference: st.cfg.AnchoredReference,
		AdaptEveryFrames:  st.cfg.AdaptEveryFrames,
		AdaptLagFrames:    st.cfg.AdaptLagFrames,
		ScoreHistory:      st.cfg.ScoreHistory,
	}
}

// Export serializes the stream's complete adaptation state. Like every
// Stream method it must not race the processing goroutine — call it
// through Server.Checkpoint (whose barrier does not join a pending round
// early) or after the stream has drained.
//
// An in-flight background adaptation round is handled by completing its
// computation (waiting on the worker-pool task) while preserving its swap
// schedule: the live detector already carries the round's effect, the
// snapshot additionally records the pre-round scoring state and the frame
// at which the swap becomes visible, so the restored stream replays the
// exact trajectory of an uninterrupted run — the round still lands at its
// configured AdaptLagFrames offset.
func (st *Stream) Export() (*snapshot.StreamState, error) {
	if st.released {
		// A tombstone: the slot's stream lives elsewhere now. Counters are
		// preserved so post-hoc stats survive a checkpoint round trip;
		// restoring a tombstone releases the target slot.
		ss := &snapshot.StreamState{
			ID:              st.id,
			Config:          st.configPin(),
			Released:        true,
			Frames:          st.frames,
			AdaptRounds:     st.adaptRounds,
			TriggeredRounds: st.triggered,
			PrunedNodes:     st.pruned,
			CreatedNodes:    st.created,
			Ledger:          st.ledger.Export(),
		}
		if st.lastErr != nil {
			ss.LastErr = st.lastErr.Error()
		}
		return ss, nil
	}
	if st.evicted {
		if err := st.EnsureResident(); err != nil {
			return nil, err
		}
	}
	src, ok := st.src.(*rng.Source)
	if !ok {
		return nil, fmt.Errorf("serve: stream %d was built over a %T random source; checkpointing requires *rng.Source", st.id, st.src)
	}
	if st.pending != nil {
		// Complete the round's computation without swapping it in.
		st.pending.g.Wait()
	}
	ss := &snapshot.StreamState{
		ID:              st.id,
		Config:          st.configPin(),
		Frames:          st.frames,
		AdaptRounds:     st.adaptRounds,
		TriggeredRounds: st.triggered,
		PrunedNodes:     st.pruned,
		CreatedNodes:    st.created,
		RNG:             src.State(),
		Scores:          append(snapshot.Floats(nil), st.scores...),
		Monitor:         snapshot.EncodeMonitor(st.mon.ExportState()),
		Ledger:          st.ledger.Export(),
	}
	if st.lastErr != nil {
		ss.LastErr = st.lastErr.Error()
	}
	det, err := snapshot.CaptureDetector(st.det)
	if err != nil {
		return nil, fmt.Errorf("serve: stream %d: %w", st.id, err)
	}
	ss.Detector = det
	if st.adapter != nil {
		ss.Adapter = snapshot.EncodeAdapter(st.adapter.ExportState())
	}
	if st.pending != nil {
		scoreDet, err := snapshot.CaptureDetector(st.scoreDet)
		if err != nil {
			return nil, fmt.Errorf("serve: stream %d pending round: %w", st.id, err)
		}
		ss.Pending = &snapshot.PendingState{
			SwapFrame: st.pending.swapFrame,
			Report:    snapshot.EncodeReport(st.pending.rep),
			ScoreDet:  scoreDet,
		}
		if st.pending.err != nil {
			ss.Pending.Err = st.pending.err.Error()
		}
	}
	return ss, nil
}

// Restore replaces the stream's state with a previously exported one. The
// stream must have been constructed over the same backbone and with the
// same configuration the checkpoint was taken under (validated against
// the recorded pin). Any in-flight round of the current state is joined
// and discarded — the checkpoint's state wins wholesale.
func (st *Stream) Restore(ss *snapshot.StreamState) error {
	src, ok := st.src.(*rng.Source)
	if !ok {
		return fmt.Errorf("serve: stream %d was built over a %T random source; restore requires *rng.Source", st.id, st.src)
	}
	if pin := st.configPin(); pin != ss.Config {
		return fmt.Errorf("serve: stream %d config %+v does not match checkpoint config %+v", st.id, pin, ss.Config)
	}
	if ss.Released {
		// The checkpoint recorded a tombstone: the stream had moved to
		// another worker. Reproduce that end state — drop this slot's
		// state and keep the recorded counters.
		if err := st.Release(); err != nil {
			return err
		}
		st.frames = ss.Frames
		st.adaptRounds = ss.AdaptRounds
		st.triggered = ss.TriggeredRounds
		st.pruned = ss.PrunedNodes
		st.created = ss.CreatedNodes
		st.lastErr = nil
		if ss.LastErr != "" {
			st.lastErr = errors.New(ss.LastErr)
		}
		st.ledger.Import(ss.Ledger)
		return nil
	}
	if st.released {
		return fmt.Errorf("serve: stream %d was released; slots retire for good — restore into a fresh slot", st.id)
	}
	if st.evicted {
		// The checkpoint replaces the spilled state wholesale: rebuild the
		// containers but skip loading the spill file.
		if err := st.materialize(); err != nil {
			return err
		}
		if st.spillPath != "" {
			os.Remove(st.spillPath)
			st.spillPath = ""
		}
	}
	if st.adapter == nil && ss.Adapter != nil {
		return fmt.Errorf("serve: stream %d is static but checkpoint carries adapter state", st.id)
	}
	if st.adapter != nil && ss.Adapter == nil {
		return fmt.Errorf("serve: stream %d is adaptive but checkpoint has no adapter state", st.id)
	}
	// Settle any in-flight round before overwriting the state it mutates.
	if st.pending != nil {
		st.pending.g.Wait()
		st.pending = nil
	}
	if err := snapshot.RestoreDetector(st.det, ss.Detector); err != nil {
		return fmt.Errorf("serve: stream %d: %w", st.id, err)
	}
	monState, err := snapshot.DecodeMonitor(ss.Monitor)
	if err != nil {
		return fmt.Errorf("serve: stream %d: %w", st.id, err)
	}
	if err := st.mon.ImportState(monState); err != nil {
		return fmt.Errorf("serve: stream %d: %w", st.id, err)
	}
	if st.adapter != nil {
		adState, err := snapshot.DecodeAdapter(ss.Adapter)
		if err != nil {
			return fmt.Errorf("serve: stream %d: %w", st.id, err)
		}
		if err := st.adapter.ImportState(adState); err != nil {
			return fmt.Errorf("serve: stream %d: %w", st.id, err)
		}
	} else {
		// Restored banks come in trainable; re-assert the static
		// deployment's full freeze.
		st.det.Deploy()
	}
	src.Restore(ss.RNG)
	st.frames = ss.Frames
	st.adaptRounds = ss.AdaptRounds
	st.triggered = ss.TriggeredRounds
	st.pruned = ss.PrunedNodes
	st.created = ss.CreatedNodes
	st.scores = append([]float64(nil), ss.Scores...)
	st.lastErr = nil
	if ss.LastErr != "" {
		st.lastErr = errors.New(ss.LastErr)
	}
	st.ledger.Import(ss.Ledger)
	st.scoreDet = st.det
	if ss.Pending != nil {
		if st.cfg.AdaptLagFrames <= 0 {
			return fmt.Errorf("serve: stream %d checkpoint has a pending round but adaptation is synchronous", st.id)
		}
		// The pending round's computation already happened before the
		// snapshot (its effect is in the restored live detector); scoring
		// continues on the recorded pre-round state until the swap frame,
		// where the regular join path delivers the recorded report.
		snap, err := st.clone()
		if err != nil {
			return fmt.Errorf("serve: stream %d pending round: %w", st.id, err)
		}
		if err := snapshot.RestoreDetector(snap, ss.Pending.ScoreDet); err != nil {
			return fmt.Errorf("serve: stream %d pending round: %w", st.id, err)
		}
		p := &pendingRound{swapFrame: ss.Pending.SwapFrame, rep: snapshot.DecodeReport(ss.Pending.Report)}
		if ss.Pending.Err != "" {
			p.err = errors.New(ss.Pending.Err)
		}
		st.scoreDet = snap
		st.pending = p
	}
	// A restored pending round has no live goroutine mutating the
	// detector, so the breakdown is safe to read here.
	st.updateMem()
	return nil
}

// Stats returns the stream's accumulated statistics. Like every Stream
// method it must not race the processing goroutine — read it through
// Server.Do or after the stream has drained.
func (st *Stream) Stats() Stats {
	s := st.statsCommon()
	s.ResidentBytes = st.MemBreakdown().Resident()
	return s
}

// StatsRaw is Stats for observers that hold only a raw barrier (no round
// join): while a background round is mutating the detector the resident
// figure cannot be recomputed (the breakdown walks graph and bank
// storage), so it comes from the last settled ledger report instead —
// every other field reads loop-owned counters or the mutex-guarded cost
// ledger and is exact.
func (st *Stream) StatsRaw() Stats {
	s := st.statsCommon()
	switch {
	case st.pending == nil:
		s.ResidentBytes = st.MemBreakdown().Resident()
	case st.mem != nil:
		s.ResidentBytes = st.mem.Stream(st.id).Resident()
	}
	return s
}

func (st *Stream) statsCommon() Stats {
	s := Stats{
		Stream:          st.id,
		Frames:          st.frames,
		AdaptRounds:     st.adaptRounds,
		TriggeredRounds: st.triggered,
		PrunedNodes:     st.pruned,
		CreatedNodes:    st.created,
		ScoringOps:      st.ledger.PhaseOps(PhaseScoring),
		AdaptOps:        st.ledger.PhaseOps(PhaseAdaptation),
		Evictions:       st.evictions,
	}
	if st.lastErr != nil {
		s.LastErr = st.lastErr.Error()
	}
	if st.adaptRounds > 0 {
		s.AdaptOpsPerRound = s.AdaptOps / int64(st.adaptRounds)
		s.EnergyPerAdaptJ = st.cfg.Device.EnergyJoules(s.AdaptOpsPerRound)
		s.AdaptLatencyS = st.cfg.Device.LatencySeconds(s.AdaptOpsPerRound)
	}
	return s
}
