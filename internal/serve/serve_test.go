package serve_test

import (
	"math/rand"
	"testing"

	"edgekg/internal/bpe"
	"edgekg/internal/concept"
	"edgekg/internal/core"
	"edgekg/internal/dataset"
	"edgekg/internal/decision"
	"edgekg/internal/edge"
	"edgekg/internal/embed"
	"edgekg/internal/gnn"
	"edgekg/internal/kg"
	"edgekg/internal/kggen"
	"edgekg/internal/oracle"
	"edgekg/internal/parallel"
	"edgekg/internal/rng"
	"edgekg/internal/serve"
	"edgekg/internal/temporal"
	"edgekg/internal/tensor"
)

// buildBackbone assembles the small deployment fixture: detector + frame
// generator, fully determined by seed.
func buildBackbone(t *testing.T, seed int64) (*core.Detector, *dataset.Generator) {
	t.Helper()
	ont := concept.Builtin()
	tok := bpe.Train(ont.Concepts(), 600)
	space, err := embed.NewSpace(tok, ont.Concepts(), embed.Config{Dim: 16, PixDim: 32, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	llm := oracle.NewSim(ont, rng, oracle.Config{EdgeProb: 0.9})
	g, _, err := kggen.Generate(llm, "Stealing",
		kggen.Options{Depth: 2, InitialFanout: 4, Fanout: 3, MaxCorrectionIters: 3, Tokenize: tok.Encode}, rng)
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.NewDetector(rng, space, []*kg.Graph{g}, core.Config{
		GNN:              gnn.Config{Width: 8},
		Temporal:         temporal.Config{InnerDim: 16, Heads: 2, Layers: 1, Window: 4},
		NumClasses:       2,
		Loss:             decision.DefaultLossConfig(),
		ScoreTemperature: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	dcfg := dataset.DefaultConfig()
	dcfg.FramesPerVideo = 16
	gen, err := dataset.NewGenerator(space, ont, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	return det, gen
}

// streamCfg is the small-scale per-stream configuration used throughout:
// aggressive cadence so short runs exercise many adaptation rounds, and
// patience 1 so structural KG changes (prune + create) actually happen.
func streamCfg(lag int) serve.StreamConfig {
	cfg := serve.DefaultStreamConfig()
	cfg.MonitorN = 8
	cfg.MonitorLag = 4
	cfg.AdaptEveryFrames = 8
	cfg.AdaptLagFrames = lag
	cfg.Adapt.Patience = 1
	return cfg
}

// frameSchedule synthesises n deterministic frames: class a, drifting to
// class b at frame driftAt (driftAt ≥ n keeps the trend at a).
func frameSchedule(gen *dataset.Generator, seed int64, n, driftAt int, a, b concept.Class) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*tensor.Tensor, n)
	for i := range out {
		cls := a
		if i >= driftAt {
			cls = b
		}
		out[i] = gen.Frame(rng, cls)
	}
	return out
}

// streamOf fetches a stream context, failing the test on a bad id.
func streamOf(t *testing.T, s *serve.Server, id int) *serve.Stream {
	t.Helper()
	st, err := s.Stream(id)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// resultsOf fetches a stream's result channel, failing the test on a bad id.
func resultsOf(t *testing.T, s *serve.Server, id int) <-chan serve.Result {
	t.Helper()
	ch, err := s.Results(id)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

// frameTrace is one stream's observed trajectory.
type frameTrace struct {
	scores    []float64
	applied   []int // seqs at which a round's result became visible
	triggered []bool
	pruned    []int
	created   []int
}

// pump drives one stream in lockstep (submit one, receive one), setting
// the anchored reference to 1.0 after refAfter frames so the monitor sees
// a persistent mean drop and adaptation keeps engaging.
func pump(t *testing.T, s *serve.Server, id int, frames []*tensor.Tensor, refAfter int) frameTrace {
	t.Helper()
	var tr frameTrace
	for i, f := range frames {
		if i == refAfter {
			if err := s.Do(id, func(st *serve.Stream) { st.Monitor().SetReference(1.0) }); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Submit(id, f); err != nil {
			t.Fatal(err)
		}
		res, ok := <-resultsOf(t, s, id)
		if !ok {
			t.Fatalf("stream %d: results closed early", id)
		}
		if res.Err != nil {
			t.Fatalf("stream %d frame %d: %v", id, i, res.Err)
		}
		if res.Seq != i {
			t.Fatalf("stream %d: got seq %d, want %d", id, res.Seq, i)
		}
		tr.scores = append(tr.scores, res.Score)
		if res.AdaptApplied {
			tr.applied = append(tr.applied, res.Seq)
			tr.triggered = append(tr.triggered, res.Adapt.Triggered)
			tr.pruned = append(tr.pruned, len(res.Adapt.Pruned))
			tr.created = append(tr.created, len(res.Adapt.Created))
		}
	}
	return tr
}

func equalTraces(a, b frameTrace) bool {
	if len(a.scores) != len(b.scores) || len(a.applied) != len(b.applied) {
		return false
	}
	for i := range a.scores {
		if a.scores[i] != b.scores[i] {
			return false
		}
	}
	for i := range a.applied {
		if a.applied[i] != b.applied[i] || a.triggered[i] != b.triggered[i] ||
			a.pruned[i] != b.pruned[i] || a.created[i] != b.created[i] {
			return false
		}
	}
	return true
}

// nodeIDs returns a graph's node id set in deterministic order.
func nodeIDs(g *kg.Graph) []kg.NodeID {
	var out []kg.NodeID
	for _, n := range g.Nodes() {
		out = append(out, n.ID)
	}
	return out
}

// TestServerSingleStreamEquivalentToEdgeRuntime pins the serving runtime
// to the classic single-camera deployment: a 1-stream synchronous server
// must be bit-identical to edge.Runtime on the same seeded stream —
// scores, per-round adaptation decisions, metered FLOPs and the final KG
// node set.
func TestServerSingleStreamEquivalentToEdgeRuntime(t *testing.T) {
	const frames = 48
	const seed = 1

	// Drifting stream: the trend the detector was built for, then a shift.
	backbone, gen := buildBackbone(t, seed)
	stream := frameSchedule(gen, 101, frames, 24, concept.Stealing, concept.Robbery)

	cfg := serve.DefaultConfig()
	cfg.Stream = streamCfg(0)
	cfg.Seeds = []int64{7}
	srv, err := serve.NewServer(backbone, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	serveTrace := pump(t, srv, 0, stream, 4)
	srv.CloseStream(0)
	for range resultsOf(t, srv, 0) {
	}
	srv.Shutdown()
	serveStats := streamOf(t, srv, 0).Stats()
	serveNodes := nodeIDs(streamOf(t, srv, 0).Detector().Graphs()[0])

	// The reference arm runs on an independent, identically-seeded build
	// (the server arm adapted its own clone, not the backbone).
	det2, gen2 := buildBackbone(t, seed)
	stream2 := frameSchedule(gen2, 101, frames, 24, concept.Stealing, concept.Robbery)
	ecfg := edge.DefaultConfig()
	ecfg.MonitorN = 8
	ecfg.MonitorLag = 4
	ecfg.AdaptEveryFrames = 8
	ecfg.Adapt.Patience = 1
	rt, err := edge.NewRuntime(det2, ecfg, rng.NewSource(7))
	if err != nil {
		t.Fatal(err)
	}
	var edgeTrace frameTrace
	for i, f := range stream2 {
		if i == 4 {
			rt.Monitor().SetReference(1.0)
		}
		score, rep, err := rt.ProcessFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		edgeTrace.scores = append(edgeTrace.scores, score)
		if (i+1)%ecfg.AdaptEveryFrames == 0 {
			edgeTrace.applied = append(edgeTrace.applied, i)
			edgeTrace.triggered = append(edgeTrace.triggered, rep.Triggered)
			edgeTrace.pruned = append(edgeTrace.pruned, len(rep.Pruned))
			edgeTrace.created = append(edgeTrace.created, len(rep.Created))
		}
	}

	for i := range stream2 {
		if stream2[i].Data()[0] != stream[i].Data()[0] {
			t.Fatal("fixture streams diverge — backbone build is not deterministic")
		}
	}
	for i := range serveTrace.scores {
		if serveTrace.scores[i] != edgeTrace.scores[i] {
			t.Fatalf("frame %d: server score %v != edge score %v", i, serveTrace.scores[i], edgeTrace.scores[i])
		}
	}
	// Round-for-round decisions. The server reports a synchronous round on
	// the frame that ran it, exactly like the edge runtime's cadence.
	if len(serveTrace.applied) != len(edgeTrace.applied) {
		t.Fatalf("server ran %d rounds, edge ran %d", len(serveTrace.applied), len(edgeTrace.applied))
	}
	for i := range serveTrace.applied {
		if serveTrace.applied[i] != edgeTrace.applied[i] ||
			serveTrace.triggered[i] != edgeTrace.triggered[i] ||
			serveTrace.pruned[i] != edgeTrace.pruned[i] ||
			serveTrace.created[i] != edgeTrace.created[i] {
			t.Fatalf("round %d decision mismatch: server (seq %d trig %v p %d c %d) vs edge (seq %d trig %v p %d c %d)",
				i, serveTrace.applied[i], serveTrace.triggered[i], serveTrace.pruned[i], serveTrace.created[i],
				edgeTrace.applied[i], edgeTrace.triggered[i], edgeTrace.pruned[i], edgeTrace.created[i])
		}
	}
	if !anyTrue(serveTrace.triggered) {
		t.Fatal("fixture never triggered adaptation — equivalence test is vacuous")
	}

	est := rt.Stats()
	if serveStats.Frames != est.Frames || serveStats.AdaptRounds != est.AdaptRounds ||
		serveStats.TriggeredRounds != est.TriggeredRounds ||
		serveStats.PrunedNodes != est.PrunedNodes || serveStats.CreatedNodes != est.CreatedNodes {
		t.Fatalf("stats mismatch: server %+v vs edge %+v", serveStats, est)
	}
	if serveStats.ScoringOps != est.ScoringOps || serveStats.AdaptOps != est.AdaptOps {
		t.Fatalf("metered ops mismatch: server scoring %d adapt %d vs edge scoring %d adapt %d",
			serveStats.ScoringOps, serveStats.AdaptOps, est.ScoringOps, est.AdaptOps)
	}

	edgeNodes := nodeIDs(rt.Detector().Graphs()[0])
	if len(serveNodes) != len(edgeNodes) {
		t.Fatalf("final node sets differ in size: %d vs %d", len(serveNodes), len(edgeNodes))
	}
	for i := range serveNodes {
		if serveNodes[i] != edgeNodes[i] {
			t.Fatalf("final node sets differ: %v vs %v", serveNodes, edgeNodes)
		}
	}
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}

// multiStreamRun drives one N-stream server over per-stream schedules and
// returns each stream's trace plus its final node set.
func multiStreamRun(t *testing.T, backbone *core.Detector, schedules [][]*tensor.Tensor, lag int, seeds []int64) ([]frameTrace, [][]kg.NodeID) {
	t.Helper()
	cfg := serve.DefaultConfig()
	cfg.Stream = streamCfg(lag)
	cfg.Stream.ScoreHistory = 256
	cfg.Seeds = seeds
	srv, err := serve.NewServer(backbone, len(schedules), cfg)
	if err != nil {
		t.Fatal(err)
	}
	traces := make([]frameTrace, len(schedules))
	done := make(chan int, len(schedules))
	for i := range schedules {
		i := i
		go func() {
			traces[i] = pump(t, srv, i, schedules[i], 4)
			srv.CloseStream(i)
			for range resultsOf(t, srv, i) {
			}
			done <- i
		}()
	}
	for range schedules {
		<-done
	}
	srv.Shutdown()
	nodes := make([][]kg.NodeID, len(schedules))
	for i := range schedules {
		if err := streamOf(t, srv, i).Err(); err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
		nodes[i] = nodeIDs(streamOf(t, srv, i).Detector().Graphs()[0])
	}
	return traces, nodes
}

// TestServerWorkerCountDeterminism pins the central serving guarantee:
// per-stream score trajectories and adaptation decisions are bit-exact at
// any EDGEKG_WORKERS setting, including with asynchronous adaptation
// overlapping scoring.
func TestServerWorkerCountDeterminism(t *testing.T) {
	backbone, gen := buildBackbone(t, 2)
	const frames = 40
	schedules := [][]*tensor.Tensor{
		frameSchedule(gen, 201, frames, 16, concept.Stealing, concept.Robbery),
		frameSchedule(gen, 202, frames, 24, concept.Stealing, concept.Explosion),
		frameSchedule(gen, 203, frames, frames, concept.Normal, concept.Normal),
	}
	seeds := []int64{11, 12, 13}

	var ref []frameTrace
	var refNodes [][]kg.NodeID
	for _, w := range []int{1, 2, 8} {
		prev := parallel.SetWorkers(w)
		traces, nodes := multiStreamRun(t, backbone, schedules, 3, seeds)
		parallel.SetWorkers(prev)
		if ref == nil {
			ref, refNodes = traces, nodes
			continue
		}
		for i := range traces {
			if !equalTraces(ref[i], traces[i]) {
				t.Fatalf("stream %d trajectory differs at %d workers", i, w)
			}
			if len(refNodes[i]) != len(nodes[i]) {
				t.Fatalf("stream %d final node set differs at %d workers", i, w)
			}
			for k := range nodes[i] {
				if refNodes[i][k] != nodes[i][k] {
					t.Fatalf("stream %d final node set differs at %d workers", i, w)
				}
			}
		}
	}
	trig := 0
	for _, tr := range ref {
		for _, b := range tr.triggered {
			if b {
				trig++
			}
		}
	}
	if trig == 0 {
		t.Fatal("no stream ever triggered adaptation — determinism test is vacuous")
	}
}

// TestServerCrossStreamIsolation pins per-stream isolation: a stream's
// trajectory is a pure function of its own frames and seed — changing the
// other streams' drift schedules, or removing the other streams entirely,
// must not move a single bit.
func TestServerCrossStreamIsolation(t *testing.T) {
	backbone, gen := buildBackbone(t, 3)
	const frames = 40
	s0 := frameSchedule(gen, 301, frames, 16, concept.Stealing, concept.Robbery)

	runA, _ := multiStreamRun(t, backbone, [][]*tensor.Tensor{
		s0,
		frameSchedule(gen, 302, frames, 8, concept.Stealing, concept.Explosion),
		frameSchedule(gen, 303, frames, frames, concept.Robbery, concept.Robbery),
	}, 3, []int64{21, 22, 23})

	runB, _ := multiStreamRun(t, backbone, [][]*tensor.Tensor{
		s0,
		frameSchedule(gen, 902, frames, 30, concept.Explosion, concept.Stealing),
		frameSchedule(gen, 903, frames, frames, concept.Normal, concept.Normal),
	}, 3, []int64{21, 99, 77})

	if !equalTraces(runA[0], runB[0]) {
		t.Fatal("stream 0 trajectory depends on sibling streams' schedules")
	}

	solo, _ := multiStreamRun(t, backbone, [][]*tensor.Tensor{s0}, 3, []int64{21})
	if !equalTraces(runA[0], solo[0]) {
		t.Fatal("stream 0 trajectory differs between multi-stream and solo runs")
	}
}

// TestStreamSnapshotSwapTiming pins the snapshot/swap semantics: with lag
// L, the L frames after a trigger are scored on the pre-round state (bit-
// identical to a never-adapting deployment), and the round's effect (and
// report) lands exactly at frame trigger+L.
func TestStreamSnapshotSwapTiming(t *testing.T) {
	backbone, gen := buildBackbone(t, 4)
	const frames = 16
	const lag = 3
	stream := frameSchedule(gen, 401, frames, 0, concept.Robbery, concept.Robbery)

	// Static arm: adaptation disabled, same frames.
	staticCfg := serve.DefaultConfig()
	staticCfg.Stream = streamCfg(0)
	staticCfg.Stream.AdaptEveryFrames = 0
	srvS, err := serve.NewServer(backbone, 1, staticCfg)
	if err != nil {
		t.Fatal(err)
	}
	staticTrace := pump(t, srvS, 0, stream, 4)
	srvS.CloseStream(0)
	for range resultsOf(t, srvS, 0) {
	}
	srvS.Shutdown()

	// Lagged arm: first trigger fires after frame seq 7 (8 processed).
	lagCfg := serve.DefaultConfig()
	lagCfg.Stream = streamCfg(lag)
	lagCfg.Seeds = []int64{5}
	srvL, err := serve.NewServer(backbone, 1, lagCfg)
	if err != nil {
		t.Fatal(err)
	}
	lagTrace := pump(t, srvL, 0, stream, 4)
	srvL.CloseStream(0)
	for range resultsOf(t, srvL, 0) {
	}
	srvL.Shutdown()

	// Frames 0..7 trivially identical; frames 8..8+lag-1 must still be:
	// they are scored on the pre-round snapshot.
	for i := 0; i < 8+lag; i++ {
		if lagTrace.scores[i] != staticTrace.scores[i] {
			t.Fatalf("frame %d scored on adapted state before the swap frame (lag %d)", i, lag)
		}
	}
	// The round's report lands exactly at seq 8-1+lag+1 = 8+lag... i.e.
	// the first frame scored on the adapted state.
	if len(lagTrace.applied) == 0 || lagTrace.applied[0] != 8+lag {
		t.Fatalf("first round applied at %v, want seq %d", lagTrace.applied, 8+lag)
	}
	if !lagTrace.triggered[0] {
		t.Fatal("first round did not trigger despite forced reference drop")
	}
	// And the adapted state must actually change the score stream after
	// the swap (the round updates token banks toward the pseudo-labels).
	diverged := false
	for i := 8 + lag; i < frames; i++ {
		if lagTrace.scores[i] != staticTrace.scores[i] {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("post-swap scores identical to static arm — round had no effect?")
	}
}

// TestServerAPIErrors covers the small-surface error paths.
func TestServerAPIErrors(t *testing.T) {
	backbone, gen := buildBackbone(t, 5)
	if _, err := serve.NewServer(backbone, 0, serve.DefaultConfig()); err == nil {
		t.Error("0-stream server accepted")
	}
	bad := serve.DefaultConfig()
	bad.Stream.MonitorN = 1
	if _, err := serve.NewServer(backbone, 1, bad); err == nil {
		t.Error("bad monitor config accepted")
	}
	if _, err := serve.NewStream(0, backbone, streamCfg(4), rng.NewSource(1), nil); err == nil {
		t.Error("exclusive metering with async adaptation accepted")
	}

	cfg := serve.DefaultConfig()
	cfg.Stream = streamCfg(2)
	srv, err := serve.NewServer(backbone, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Submit(5, gen.Frame(rand.New(rand.NewSource(1)), concept.Normal)); err == nil {
		t.Error("submit to unknown stream accepted")
	}
	srv.CloseStream(0)
	if err := srv.Submit(0, gen.Frame(rand.New(rand.NewSource(1)), concept.Normal)); err == nil {
		t.Error("submit to closed stream accepted")
	}
	// Stats on a drained stream run inline; on a live stream via barrier.
	if _, err := srv.StreamStats(0); err != nil {
		t.Errorf("stats on closed stream: %v", err)
	}
	if _, err := srv.StreamStats(1); err != nil {
		t.Errorf("stats on live stream: %v", err)
	}
	srv.Shutdown()
	srv.Shutdown() // idempotent
}
