package serve_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"edgekg/internal/concept"
	"edgekg/internal/parallel"
	"edgekg/internal/serve"
	"edgekg/internal/snapshot"
	"edgekg/internal/tensor"
)

// TestCOWStaticStreamsAliasBackbone pins the headline sharing invariant:
// with adaptation disabled, every stream's token pages ARE the backbone's
// tensors (pointer-identical, not copies), the stream owns zero bank and
// graph bytes, and scoring still works — the 10-100× density case.
func TestCOWStaticStreamsAliasBackbone(t *testing.T) {
	backbone, gen := buildBackbone(t, 41)
	cfg := serve.DefaultConfig()
	cfg.Stream = streamCfg(0)
	cfg.Stream.AdaptEveryFrames = 0
	const streams = 4
	srv, err := serve.NewServer(backbone, streams, cfg)
	if err != nil {
		t.Fatal(err)
	}
	frames := frameSchedule(gen, 611, 6, 6, concept.Stealing, concept.Stealing)
	for i := 0; i < streams; i++ {
		for _, f := range frames {
			if err := srv.Submit(i, f); err != nil {
				t.Fatal(err)
			}
			if res, ok := <-resultsOf(t, srv, i); !ok || res.Err != nil {
				t.Fatalf("stream %d: ok=%v err=%v", i, ok, res.Err)
			}
		}
	}
	for i := 0; i < streams; i++ {
		srv.CloseStream(i)
		for range resultsOf(t, srv, i) {
		}
	}
	srv.Shutdown()

	bank := backbone.GNN(0).Tokens()
	for i := 0; i < streams; i++ {
		st := streamOf(t, srv, i)
		mem := st.Detector().Mem()
		if mem.BankOwned != 0 || mem.GraphOwned != 0 {
			t.Errorf("static stream %d owns bytes: banks %d graphs %d", i, mem.BankOwned, mem.GraphOwned)
		}
		if mem.BankShared == 0 || mem.GraphShared == 0 {
			t.Errorf("static stream %d reports no shared bytes", i)
		}
		sb := st.Detector().GNN(0).Tokens()
		for _, id := range bank.NodeIDs() {
			if sb.Bank(id).Data != bank.Bank(id).Data {
				t.Fatalf("stream %d node %d: page is a copy, not an alias", i, id)
			}
		}
		if st.Stats().ResidentBytes == 0 {
			t.Errorf("stream %d reports zero resident bytes (monitor window should be charged)", i)
		}
	}
}

// TestCOWWriterIsolation is the copy-on-write isolation pin, run at 1 and
// 8 workers (the race shard runs this package under -race): a drifting
// stream whose adapter writes its banks materializes private pages; the
// backbone stays bit-unchanged; and the full multi-stream trajectory plus
// every final bank page is bit-equal to an eager-clone server over an
// identical backbone — COW is purely a memory optimisation.
func TestCOWWriterIsolation(t *testing.T) {
	const seed = 42
	const streams = 3
	const frames = 24

	mkSchedules := func() [][]*tensor.Tensor {
		_, gen := buildBackbone(t, seed)
		out := make([][]*tensor.Tensor, streams)
		// Stream 0 drifts (its forced reference makes adaptation write);
		// the others watch a stationary trend.
		out[0] = frameSchedule(gen, 621, frames, 8, concept.Stealing, concept.Robbery)
		for i := 1; i < streams; i++ {
			out[i] = frameSchedule(gen, 622+int64(i), frames, frames, concept.Stealing, concept.Stealing)
		}
		return out
	}
	refAt := func(stream int) int {
		if stream == 0 {
			return 4
		}
		return -1 // never force the reference: siblings mostly stay quiet
	}

	run := func(eager bool) ([]frameTrace, [][]float64, [][][]float64) {
		backbone, _ := buildBackbone(t, seed)
		schedules := mkSchedules()
		cfg := checkpointCfg(3)
		cfg.Seeds = []int64{31, 32, 33}
		cfg.Stream.EagerClone = eager
		srv, err := serve.NewServer(backbone, streams, cfg)
		if err != nil {
			t.Fatal(err)
		}

		bank := backbone.GNN(0).Tokens()
		before := make(map[int][]float64)
		for _, id := range bank.NodeIDs() {
			before[int(id)] = append([]float64(nil), bank.Bank(id).Data.Data()...)
		}

		traces := make([]frameTrace, streams)
		for i := 0; i < streams; i++ {
			traces[i] = pumpPart(t, srv, i, schedules[i], 0, frames, refAt(i))
		}
		_, _, hist := drainAndStats(t, srv, streams)

		// The backbone's pages never move, whatever the clone mode.
		for _, id := range bank.NodeIDs() {
			got := bank.Bank(id).Data.Data()
			want := before[int(id)]
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("eager=%v: backbone bank %d moved at %d", eager, id, k)
				}
			}
		}

		// The writer adapted and (in COW mode) materialized private pages.
		if !anyTrue(traces[0].triggered) {
			t.Fatalf("eager=%v: writer stream never triggered — fixture is vacuous", eager)
		}
		if !eager && streamOf(t, srv, 0).Detector().Mem().BankOwned == 0 {
			t.Error("writer stream owns no bank bytes after adaptation writes")
		}

		banks := make([][][]float64, streams)
		for i := 0; i < streams; i++ {
			sb := streamOf(t, srv, i).Detector().GNN(0).Tokens()
			for _, id := range sb.NodeIDs() {
				banks[i] = append(banks[i], append([]float64(nil), sb.Bank(id).Data.Data()...))
			}
		}
		return traces, hist, banks
	}

	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			prev := parallel.SetWorkers(workers)
			defer parallel.SetWorkers(prev)

			cowTraces, cowHist, cowBanks := run(false)
			eagerTraces, eagerHist, eagerBanks := run(true)
			for i := 0; i < streams; i++ {
				if !equalTraces(cowTraces[i], eagerTraces[i]) {
					t.Errorf("stream %d: COW trajectory differs from eager clone\ncow: %v\neager: %v",
						i, cowTraces[i].scores, eagerTraces[i].scores)
				}
				if len(cowHist[i]) != len(eagerHist[i]) {
					t.Errorf("stream %d: history length %d vs %d", i, len(cowHist[i]), len(eagerHist[i]))
				}
				if len(cowBanks[i]) != len(eagerBanks[i]) {
					t.Fatalf("stream %d: bank count %d vs %d", i, len(cowBanks[i]), len(eagerBanks[i]))
				}
				for p := range cowBanks[i] {
					for k := range cowBanks[i][p] {
						if cowBanks[i][p][k] != eagerBanks[i][p][k] {
							t.Fatalf("stream %d page %d: COW bank bits differ from eager at %d", i, p, k)
						}
					}
				}
			}
		})
	}
}

// TestEvictRehydrateEquivalence is the spill pin, structured like the
// warm-restart test: an uninterrupted run must be bit-identical to one
// whose streams are all evicted to disk mid-drift — including, at lag 3,
// with an asynchronous adaptation round in flight at the eviction point —
// and lazily rehydrated by the next frame.
func TestEvictRehydrateEquivalence(t *testing.T) {
	const seed = 11
	const frames = 24
	const split = 9 // with lag 3: round dispatched at frame 8, swap at 11 → in flight
	const streams = 2

	mkSchedules := func() [][]*tensor.Tensor {
		_, gen := buildBackbone(t, seed)
		return [][]*tensor.Tensor{
			frameSchedule(gen, 501, frames, 8, concept.Stealing, concept.Robbery),
			frameSchedule(gen, 502, frames, 12, concept.Stealing, concept.Explosion),
		}
	}

	for _, workers := range []int{1, 8} {
		for _, lag := range []int{0, 3} {
			prev := parallel.SetWorkers(workers)

			// Arm 1: uninterrupted reference.
			backbone, _ := buildBackbone(t, seed)
			schedules := mkSchedules()
			cfgA := checkpointCfg(lag)
			cfgA.SpillDir = t.TempDir()
			srvA, err := serve.NewServer(backbone, streams, cfgA)
			if err != nil {
				t.Fatal(err)
			}
			refTraces := make([]frameTrace, streams)
			for i := 0; i < streams; i++ {
				refTraces[i] = pumpPart(t, srvA, i, schedules[i], 0, frames, 4)
			}
			refStats, refNodes, refHist := drainAndStats(t, srvA, streams)

			// Arm 2: run to the split, evict every stream to disk, keep
			// pumping — the next frame rehydrates from the spill file.
			backboneB, _ := buildBackbone(t, seed)
			cfgB := checkpointCfg(lag)
			cfgB.SpillDir = t.TempDir()
			srvB, err := serve.NewServer(backboneB, streams, cfgB)
			if err != nil {
				t.Fatal(err)
			}
			preTraces := make([]frameTrace, streams)
			for i := 0; i < streams; i++ {
				preTraces[i] = pumpPart(t, srvB, i, schedules[i], 0, split, 4)
			}
			for i := 0; i < streams; i++ {
				if err := srvB.EvictStream(i); err != nil {
					t.Fatalf("evict stream %d: %v", i, err)
				}
				// Direct read, not a Do barrier: non-raw barriers settle the
				// stream, which would rehydrate a spilled pending round. The
				// EvictStream barrier already completed, so this is safe.
				if !streamOf(t, srvB, i).Evicted() {
					t.Errorf("stream %d not marked evicted after EvictStream", i)
				}
				// The spill file is a 1-stream checkpoint; with lag it must
				// carry the in-flight round so rehydration can replay it.
				spill := filepath.Join(cfgB.SpillDir, fmt.Sprintf("stream-%d.spill.json", i))
				cp, err := snapshot.Load(spill)
				if err != nil {
					t.Fatalf("stream %d spill: %v", i, err)
				}
				if lag > 0 && cp.Streams[0].Pending == nil {
					t.Fatalf("lag %d: stream %d spilled without its in-flight round — fixture is vacuous", lag, i)
				}
				if lag == 0 && cp.Streams[0].Pending != nil {
					t.Fatalf("synchronous stream %d spilled a pending round", i)
				}
			}
			resTraces := make([]frameTrace, streams)
			for i := 0; i < streams; i++ {
				resTraces[i] = pumpPart(t, srvB, i, schedules[i], split, frames, 4)
			}
			resStats, resNodes, resHist := drainAndStats(t, srvB, streams)

			parallel.SetWorkers(prev)

			anyTriggered := false
			for i := 0; i < streams; i++ {
				full := concatTraces(preTraces[i], resTraces[i])
				if !equalTraces(refTraces[i], full) {
					t.Fatalf("workers %d lag %d: stream %d evicted trajectory differs from uninterrupted run\nref: scores %v applied %v\ngot: scores %v applied %v",
						workers, lag, i, refTraces[i].scores, refTraces[i].applied, full.scores, full.applied)
				}
				anyTriggered = anyTriggered || anyTrue(refTraces[i].triggered)
				if refStats[i].Frames != resStats[i].Frames ||
					refStats[i].AdaptRounds != resStats[i].AdaptRounds ||
					refStats[i].TriggeredRounds != resStats[i].TriggeredRounds ||
					refStats[i].PrunedNodes != resStats[i].PrunedNodes ||
					refStats[i].CreatedNodes != resStats[i].CreatedNodes {
					t.Fatalf("workers %d lag %d: stream %d stats mismatch: %+v vs %+v",
						workers, lag, i, refStats[i], resStats[i])
				}
				if resStats[i].Evictions != 1 {
					t.Errorf("workers %d lag %d: stream %d evictions = %d, want 1",
						workers, lag, i, resStats[i].Evictions)
				}
				if len(refNodes[i]) != len(resNodes[i]) {
					t.Fatalf("workers %d lag %d: stream %d final node sets differ", workers, lag, i)
				}
				for k := range refNodes[i] {
					if refNodes[i][k] != resNodes[i][k] {
						t.Fatalf("workers %d lag %d: stream %d final node sets differ", workers, lag, i)
					}
				}
				if len(refHist[i]) != len(resHist[i]) {
					t.Fatalf("workers %d lag %d: stream %d score history length %d vs %d",
						workers, lag, i, len(refHist[i]), len(resHist[i]))
				}
				for k := range refHist[i] {
					if refHist[i][k] != resHist[i][k] {
						t.Fatalf("workers %d lag %d: stream %d retained score history differs at %d",
							workers, lag, i, k)
					}
				}
				// Rehydration consumed the spill file.
				spill := filepath.Join(cfgB.SpillDir, fmt.Sprintf("stream-%d.spill.json", i))
				if _, err := os.Stat(spill); !os.IsNotExist(err) {
					t.Errorf("stream %d spill file survived rehydration: %v", i, err)
				}
			}
			if !anyTriggered {
				t.Fatalf("workers %d lag %d: no adaptation round ever triggered — equivalence is vacuous", workers, lag)
			}
		}
	}
}

// TestBudgetEvictionEquivalence pins the automatic eviction policy: under
// an impossibly tight budget every idle stream spills, yet the per-stream
// trajectories remain bit-identical to an unbudgeted run — eviction timing
// is nondeterministic, trajectories are not.
func TestBudgetEvictionEquivalence(t *testing.T) {
	const seed = 17
	const frames = 24
	const chunk = 8
	const streams = 3

	mkSchedules := func() [][]*tensor.Tensor {
		_, gen := buildBackbone(t, seed)
		return [][]*tensor.Tensor{
			frameSchedule(gen, 701, frames, 8, concept.Stealing, concept.Robbery),
			frameSchedule(gen, 702, frames, 12, concept.Stealing, concept.Explosion),
			frameSchedule(gen, 703, frames, frames, concept.Normal, concept.Normal),
		}
	}

	// Interleave chunks across streams so each stream goes idle between its
	// chunks — exactly when the budget-driven policy evicts it.
	run := func(budget int64) ([]frameTrace, []serve.Stats) {
		backbone, _ := buildBackbone(t, seed)
		schedules := mkSchedules()
		cfg := checkpointCfg(0)
		cfg.Seeds = []int64{31, 32, 33}
		cfg.MemBudgetBytes = budget
		cfg.SpillDir = t.TempDir()
		srv, err := serve.NewServer(backbone, streams, cfg)
		if err != nil {
			t.Fatal(err)
		}
		traces := make([]frameTrace, streams)
		for lo := 0; lo < frames; lo += chunk {
			for i := 0; i < streams; i++ {
				part := pumpPart(t, srv, i, schedules[i], lo, lo+chunk, 4)
				traces[i] = concatTraces(traces[i], part)
			}
		}
		stats, _, _ := drainAndStats(t, srv, streams)
		return traces, stats
	}

	refTraces, refStats := run(0) // unbudgeted: nothing ever evicts
	tightTraces, tightStats := run(1)

	evictions := 0
	for i := 0; i < streams; i++ {
		if refStats[i].Evictions != 0 {
			t.Errorf("unbudgeted stream %d evicted %d times", i, refStats[i].Evictions)
		}
		evictions += tightStats[i].Evictions
		if !equalTraces(refTraces[i], tightTraces[i]) {
			t.Errorf("stream %d: budgeted trajectory differs from unbudgeted run\nref: %v\ngot: %v",
				i, refTraces[i].scores, tightTraces[i].scores)
		}
		if refStats[i].Frames != tightStats[i].Frames ||
			refStats[i].AdaptRounds != tightStats[i].AdaptRounds ||
			refStats[i].TriggeredRounds != tightStats[i].TriggeredRounds {
			t.Errorf("stream %d: stats mismatch: %+v vs %+v", i, refStats[i], tightStats[i])
		}
	}
	if evictions == 0 {
		t.Fatal("tight budget never evicted a stream — policy test is vacuous")
	}
}
