package serve_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"edgekg/internal/concept"
	"edgekg/internal/parallel"
	"edgekg/internal/serve"
	"edgekg/internal/snapshot"
	"edgekg/internal/tensor"
)

// TestDoContextTimeoutOnBusyPipeline pins the deadline-bound barrier
// variant against the Do/Results deadlock footgun: with the stream's
// pipeline full and no consumer draining results, Do would block forever —
// DoContext must instead give up at its deadline, and succeed normally
// once the pipeline drains.
func TestDoContextTimeoutOnBusyPipeline(t *testing.T) {
	backbone, gen := buildBackbone(t, 1)
	stream := frameSchedule(gen, 11, 2, 2, concept.Stealing, concept.Stealing)

	cfg := serve.DefaultConfig()
	cfg.Stream = streamCfg(0)
	cfg.QueueDepth = 1
	srv, err := serve.NewServer(backbone, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	// Two unconsumed frames wedge the pipeline: the loop is parked writing
	// the second result into the full out channel.
	for _, f := range stream {
		if err := srv.Submit(0, f); err != nil {
			t.Fatal(err)
		}
	}

	// First barrier: the queue has room, so the fn is enqueued — but the
	// loop never reaches it, and the call gives up at its deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	ran := make(chan struct{}, 1)
	start := time.Now()
	if err := srv.DoContext(ctx, 0, func(*serve.Stream) { ran <- struct{}{} }); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("DoContext on a wedged pipeline: %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("DoContext did not honour its deadline")
	}
	// Second barrier: the queue is now full (the abandoned fn occupies it),
	// so this one times out in the enqueue itself and never runs at all.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel2()
	if err := srv.DoRawContext(ctx2, 0, func(*serve.Stream) { t.Error("never-enqueued fn ran") }); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("DoRawContext on a full queue: %v, want deadline exceeded", err)
	}

	// Drain; the stream comes back and the same barrier now succeeds.
	res := resultsOf(t, srv, 0)
	for range stream {
		if r := <-res; r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	ctx3, cancel3 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel3()
	var frames int
	if err := srv.DoContext(ctx3, 0, func(st *serve.Stream) { frames = st.Stats().Frames }); err != nil {
		t.Fatalf("DoContext after drain: %v", err)
	}
	if frames != len(stream) {
		t.Fatalf("barrier saw %d frames, want %d", frames, len(stream))
	}
	// The first timed-out barrier's fn was still delivered (documented: a
	// fn already enqueued may run after its caller gave up).
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned barrier fn never ran after drain")
	}

	// StatsContext/ScoresContext ride the same path.
	if _, err := srv.StatsContext(ctx3, 0); err != nil {
		t.Fatalf("StatsContext: %v", err)
	}
	if _, err := srv.ScoresContext(ctx3, 0); err != nil {
		t.Fatalf("ScoresContext: %v", err)
	}
}

// TestShutdownCleansSpillFiles is the orphaned-spill regression test:
// a stream evicted to disk and never touched again must not leave its
// spill file behind after Shutdown — the state rehydrates on the way
// down, so post-shutdown accessors still work and SpillDir ends empty.
func TestShutdownCleansSpillFiles(t *testing.T) {
	backbone, gen := buildBackbone(t, 1)
	stream := frameSchedule(gen, 21, 8, 8, concept.Stealing, concept.Stealing)
	dir := t.TempDir()

	cfg := serve.DefaultConfig()
	cfg.Stream = streamCfg(0)
	cfg.Stream.ScoreHistory = 16
	cfg.SpillDir = dir
	srv, err := serve.NewServer(backbone, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := pump(t, srv, 0, stream, len(stream))

	if err := srv.EvictStream(0); err != nil {
		t.Fatal(err)
	}
	spills, err := filepath.Glob(filepath.Join(dir, "*.spill.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(spills) != 1 {
		t.Fatalf("evicted stream left %d spill files, want 1", len(spills))
	}

	srv.Shutdown()

	spills, err = filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(spills) != 0 {
		t.Fatalf("Shutdown left %v behind in the spill dir", spills)
	}
	// The rehydrate-then-drain path keeps the state accessible.
	st := streamOf(t, srv, 0)
	if st.Evicted() {
		t.Fatal("stream still evicted after Shutdown")
	}
	stats := st.Stats()
	if stats.Frames != len(stream) || stats.Evictions != 1 {
		t.Fatalf("post-shutdown stats: %+v", stats)
	}
	if got := st.Scores(); len(got) == 0 || got[len(got)-1] != tr.scores[len(tr.scores)-1] {
		t.Fatalf("post-shutdown scores lost: %v", got)
	}
}

// TestEvictionErrorSurfaces pins satellite-level error plumbing: a failed
// background eviction has no Result to ride on, so it must land in
// Stats.LastErr — and a failed manual EvictStream must return its error.
func TestEvictionErrorSurfaces(t *testing.T) {
	backbone, gen := buildBackbone(t, 1)
	stream := frameSchedule(gen, 31, 24, 24, concept.Stealing, concept.Stealing)
	dir := filepath.Join(t.TempDir(), "spill")
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}

	cfg := serve.DefaultConfig()
	cfg.Stream = streamCfg(0)
	cfg.MemBudgetBytes = 1 // always over budget: every frame wants an eviction
	cfg.SpillDir = dir
	srv, err := serve.NewServer(backbone, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	// Break the spill target *after* construction, then make stream 0 the
	// idle LRU victim by pumping stream 1: its background eviction must
	// fail and retain the error.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := srv.Submit(0, stream[0]); err != nil {
		t.Fatal(err)
	}
	if r := <-resultsOf(t, srv, 0); r.Err != nil {
		t.Fatal(r.Err)
	}
	res1 := resultsOf(t, srv, 1)
	deadline := time.Now().Add(30 * time.Second)
	var lastErr string
	for lastErr == "" {
		if time.Now().After(deadline) {
			t.Fatal("background eviction failure never surfaced in Stats.LastErr")
		}
		for _, f := range stream {
			if err := srv.Submit(1, f); err != nil {
				t.Fatal(err)
			}
			if r := <-res1; r.Err != nil {
				t.Fatal(r.Err)
			}
		}
		stats, err := srv.StreamStats(0)
		if err != nil {
			t.Fatal(err)
		}
		lastErr = stats.LastErr
	}
	// The victim keeps serving: the failed spill lost nothing.
	if err := srv.Submit(0, stream[1]); err != nil {
		t.Fatal(err)
	}
	if r := <-resultsOf(t, srv, 0); r.Err != nil {
		t.Fatalf("stream after failed eviction: %v", r.Err)
	}

	// Manual eviction against the broken directory fails loudly too.
	if err := srv.EvictStream(1); err == nil {
		t.Fatal("EvictStream with a missing spill dir: want error")
	}
}

// TestConcurrentCheckpointVsEviction races full-deployment checkpoints
// against budget-driven background eviction while every stream serves —
// the -race CI shard runs this at workers 1 and 8. The final checkpoint
// must restore into a fresh server that keeps serving.
func TestConcurrentCheckpointVsEviction(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			prev := parallel.SetWorkers(workers)
			defer parallel.SetWorkers(prev)

			const nstreams, nframes = 4, 32
			backbone, gen := buildBackbone(t, 1)
			dir := t.TempDir()

			cfg := serve.DefaultConfig()
			cfg.Stream = streamCfg(2)
			cfg.MemBudgetBytes = 4096 // tight: evictions fire throughout
			cfg.SpillDir = dir
			srv, err := serve.NewServer(backbone, nstreams, cfg)
			if err != nil {
				t.Fatal(err)
			}

			// Feed all streams concurrently, lockstep per stream.
			schedules := make([][]*tensor.Tensor, nstreams)
			for i := range schedules {
				schedules[i] = frameSchedule(gen, int64(41+i), nframes, nframes/2, concept.Stealing, concept.Robbery)
			}
			var wg sync.WaitGroup
			for i := 0; i < nstreams; i++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					fs := schedules[id]
					res := resultsOf(t, srv, id)
					for j, f := range fs {
						if err := srv.Submit(id, f); err != nil {
							t.Errorf("stream %d frame %d: %v", id, j, err)
							return
						}
						if r := <-res; r.Err != nil {
							t.Errorf("stream %d frame %d: %v", id, j, r.Err)
							return
						}
					}
				}(i)
			}

			// Checkpoint continuously while the fleet serves and evicts.
			stop := make(chan struct{})
			var cpMu sync.Mutex
			var last *snapshot.Checkpoint
			var cpErr error
			var cpWg sync.WaitGroup
			cpWg.Add(1)
			go func() {
				defer cpWg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					cp, err := srv.Checkpoint()
					cpMu.Lock()
					if err != nil {
						cpErr = err
					} else {
						last = cp
					}
					cpMu.Unlock()
				}
			}()

			wg.Wait()
			close(stop)
			cpWg.Wait()
			if cpErr != nil {
				t.Fatalf("concurrent checkpoint: %v", cpErr)
			}
			// One final settled checkpoint after the feed, restored below.
			final, err := srv.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			srv.Shutdown()
			cpMu.Lock()
			if last == nil {
				t.Fatal("checkpointer never produced a checkpoint")
			}
			cpMu.Unlock()

			// The final checkpoint restores into a fresh server that serves.
			backbone2, gen2 := buildBackbone(t, 1)
			srv2, err := serve.NewServer(backbone2, nstreams, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer srv2.Shutdown()
			if err := srv2.Restore(final); err != nil {
				t.Fatal(err)
			}
			extra := frameSchedule(gen2, 99, 1, 1, concept.Stealing, concept.Stealing)
			for i := 0; i < nstreams; i++ {
				if err := srv2.Submit(i, extra[0]); err != nil {
					t.Fatal(err)
				}
				r := <-resultsOf(t, srv2, i)
				if r.Err != nil {
					t.Fatalf("restored stream %d: %v", i, r.Err)
				}
				if r.Seq != nframes {
					t.Fatalf("restored stream %d resumed at seq %d, want %d", i, r.Seq, nframes)
				}
			}
		})
	}
}
