package serve_test

import (
	"testing"

	"edgekg/internal/concept"
	"edgekg/internal/core"
	"edgekg/internal/serve"
	"edgekg/internal/snapshot"
	"edgekg/internal/tensor"
)

// precisionCfg returns the fixture stream config at the given width, with
// adaptation off so the runs isolate the scoring/monitor paths.
func precisionCfg(p core.Precision) serve.Config {
	cfg := serve.DefaultConfig()
	cfg.Stream.MonitorN = 8
	cfg.Stream.MonitorLag = 4
	cfg.Stream.AdaptEveryFrames = 0
	cfg.Stream.Precision = p
	return cfg
}

// TestServePrecisionF32MonitorBytes pins the bytes/stream win: with a
// full monitor window, an f32 stream's monitor must hold exactly half the
// frame bytes of the f64 twin, and its charged resident bytes must be
// strictly lower.
func TestServePrecisionF32MonitorBytes(t *testing.T) {
	run := func(p core.Precision) (monBytes, resident int64) {
		det, gen := buildBackbone(t, 31)
		srv, err := serve.NewServer(det, 1, precisionCfg(p))
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Shutdown()
		frames := frameSchedule(gen, 32, 16, 16, concept.Stealing, concept.Stealing)
		pump(t, srv, 0, frames, len(frames))
		if err := srv.Do(0, func(st *serve.Stream) { monBytes = st.Monitor().MemBytes() }); err != nil {
			t.Fatal(err)
		}
		stats, err := srv.StreamStats(0)
		if err != nil {
			t.Fatal(err)
		}
		return monBytes, stats.ResidentBytes
	}
	mon64, res64 := run(core.PrecisionF64)
	mon32, res32 := run(core.PrecisionF32)

	// Window frames are 8 × 32 pixels; the mean-history tail is identical
	// on both sides, so subtract it out by comparing frame bytes directly:
	// monitor bytes differ by exactly the frame-storage halving.
	frame64 := int64(8 * 32 * 8)
	frame32 := int64(8 * 32 * 4)
	if mon64-mon32 != frame64-frame32 {
		t.Errorf("monitor bytes f64=%d f32=%d: frame storage not halved (want Δ=%d, got %d)",
			mon64, mon32, frame64-frame32, mon64-mon32)
	}
	if res32 >= res64 {
		t.Errorf("resident bytes/stream: f32 %d ≥ f64 %d — reduced-precision stream must be cheaper", res32, res64)
	}
}

// TestServePrecisionF32ScoresMatchDirect pins that a served f32 stream
// scores exactly what the detector's direct float32 path produces — the
// serve tier adds plumbing, not arithmetic.
func TestServePrecisionF32ScoresMatchDirect(t *testing.T) {
	det, gen := buildBackbone(t, 33)
	ref, gen2 := buildBackbone(t, 33)
	ref.Deploy()

	srv, err := serve.NewServer(det, 1, precisionCfg(core.PrecisionF32))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	frames := frameSchedule(gen, 34, 12, 12, concept.Stealing, concept.Robbery)
	tr := pump(t, srv, 0, frames, len(frames))

	refFrames := frameSchedule(gen2, 34, 12, 12, concept.Stealing, concept.Robbery)
	for i, f := range refFrames {
		want := ref.ScoreVideoF32(f.Reshape(1, f.Size()))[0]
		if tr.scores[i] != want {
			t.Fatalf("frame %d: served f32 score %.17g != direct %.17g", i, tr.scores[i], want)
		}
	}
}

// TestServeCheckpointAtF32IsCanonical pins width-independent checkpoints:
// a checkpoint taken from an f32 deployment must carry canonical float64
// monitor frames that survive an encode→decode round trip bit-exactly,
// and restoring it under f64 must succeed with identical sample payloads.
func TestServeCheckpointAtF32IsCanonical(t *testing.T) {
	mon, err := core.NewAnchoredMonitor(4)
	if err != nil {
		t.Fatal(err)
	}
	mon.SetFrameWidth(tensor.F32)
	_, gen := buildBackbone(t, 35)
	frames := frameSchedule(gen, 36, 4, 4, concept.Stealing, concept.Stealing)
	for i, f := range frames {
		mon.Push(f.Reshape(1, f.Size()), float64(i)/8)
	}

	state := mon.ExportState()
	for i, smp := range state.Samples {
		if smp.Frame == nil {
			t.Fatalf("sample %d: exported state must carry canonical f64 frames", i)
		}
		for _, v := range smp.Frame.Data() {
			if float64(float32(v)) != v {
				t.Fatalf("sample %d: exported frame value %v is not a float32-representable canonical value", i, v)
			}
		}
	}

	wire := snapshot.EncodeMonitor(state)
	decoded, err := snapshot.DecodeMonitor(wire)
	if err != nil {
		t.Fatal(err)
	}

	// Restore under f64: the imported samples must match the narrowed
	// originals bit-exactly (float32 values are exact in float64).
	back, err := core.NewAnchoredMonitor(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.ImportState(decoded); err != nil {
		t.Fatal(err)
	}
	orig := mon.ExportState()
	got := back.ExportState()
	if len(got.Samples) != len(orig.Samples) {
		t.Fatalf("sample count %d != %d", len(got.Samples), len(orig.Samples))
	}
	for i := range got.Samples {
		a, b := got.Samples[i].Pix().Data(), orig.Samples[i].Pix().Data()
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("sample %d pixel %d: %v != %v after round trip", i, j, a[j], b[j])
			}
		}
	}

	// Restore under f32: same canonical state, re-narrowed storage.
	back32, err := core.NewAnchoredMonitor(4)
	if err != nil {
		t.Fatal(err)
	}
	back32.SetFrameWidth(tensor.F32)
	if err := back32.ImportState(decoded); err != nil {
		t.Fatal(err)
	}
	if back32.MemBytes() >= back.MemBytes() {
		t.Errorf("f32-restored monitor %d bytes ≥ f64-restored %d", back32.MemBytes(), back.MemBytes())
	}
	got32 := back32.ExportState()
	for i := range got32.Samples {
		a, b := got32.Samples[i].Pix().Data(), orig.Samples[i].Pix().Data()
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("f32 restore sample %d pixel %d: %v != %v", i, j, a[j], b[j])
			}
		}
	}
}
