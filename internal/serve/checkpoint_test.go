package serve_test

import (
	"path/filepath"
	"testing"

	"edgekg/internal/concept"
	"edgekg/internal/kg"
	"edgekg/internal/parallel"
	"edgekg/internal/rng"
	"edgekg/internal/serve"
	"edgekg/internal/snapshot"
	"edgekg/internal/tensor"
)

// pumpPart drives one stream over frames[lo:hi) in lockstep, asserting
// result sequence numbers against the absolute frame index. The anchored
// reference is forced to 1.0 before absolute frame refAt (when it falls in
// the range), matching pump's fixture behaviour.
func pumpPart(t *testing.T, s *serve.Server, id int, frames []*tensor.Tensor, lo, hi, refAt int) frameTrace {
	t.Helper()
	var tr frameTrace
	for i := lo; i < hi; i++ {
		if i == refAt {
			if err := s.Do(id, func(st *serve.Stream) { st.Monitor().SetReference(1.0) }); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Submit(id, frames[i]); err != nil {
			t.Fatal(err)
		}
		res, ok := <-resultsOf(t, s, id)
		if !ok {
			t.Fatalf("stream %d: results closed early", id)
		}
		if res.Err != nil {
			t.Fatalf("stream %d frame %d: %v", id, i, res.Err)
		}
		if res.Seq != i {
			t.Fatalf("stream %d: got seq %d, want %d", id, res.Seq, i)
		}
		tr.scores = append(tr.scores, res.Score)
		if res.AdaptApplied {
			tr.applied = append(tr.applied, res.Seq)
			tr.triggered = append(tr.triggered, res.Adapt.Triggered)
			tr.pruned = append(tr.pruned, len(res.Adapt.Pruned))
			tr.created = append(tr.created, len(res.Adapt.Created))
		}
	}
	return tr
}

func concatTraces(a, b frameTrace) frameTrace {
	return frameTrace{
		scores:    append(append([]float64(nil), a.scores...), b.scores...),
		applied:   append(append([]int(nil), a.applied...), b.applied...),
		triggered: append(append([]bool(nil), a.triggered...), b.triggered...),
		pruned:    append(append([]int(nil), a.pruned...), b.pruned...),
		created:   append(append([]int(nil), a.created...), b.created...),
	}
}

// checkpointCfg is the suite's server configuration: aggressive cadence,
// patience 1 (structural KG changes happen), score history on so the
// retained-history round trip is exercised too.
func checkpointCfg(lag int) serve.Config {
	cfg := serve.DefaultConfig()
	cfg.Stream = streamCfg(lag)
	cfg.Stream.ScoreHistory = 6
	cfg.Seeds = []int64{31, 32}
	return cfg
}

// drainAndStats closes every stream, drains results, shuts down and
// returns per-stream stats, node sets and retained score histories.
func drainAndStats(t *testing.T, srv *serve.Server, n int) ([]serve.Stats, [][]kg.NodeID, [][]float64) {
	t.Helper()
	for i := 0; i < n; i++ {
		srv.CloseStream(i)
		for range resultsOf(t, srv, i) {
		}
	}
	srv.Shutdown()
	stats := make([]serve.Stats, n)
	nodes := make([][]kg.NodeID, n)
	hist := make([][]float64, n)
	for i := 0; i < n; i++ {
		st := streamOf(t, srv, i)
		if err := st.Err(); err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
		stats[i] = st.Stats()
		nodes[i] = nodeIDs(st.Detector().Graphs()[0])
		hist[i] = st.Scores()
	}
	return stats, nodes, hist
}

// TestCheckpointResumeEquivalence is the warm-restart pin: an
// uninterrupted N-stream trajectory must be bit-identical to one that is
// checkpointed mid-run, torn down, restored into a fresh server over a
// freshly rebuilt backbone (the process-restart situation: only the seed
// and the checkpoint file survive), and continued — scores, adaptation
// decisions, stats, retained score history and final KG node sets — across
// worker counts and with or without an asynchronous adaptation round in
// flight at snapshot time.
func TestCheckpointResumeEquivalence(t *testing.T) {
	const seed = 11
	const frames = 24
	const split = 9 // with lag 3: round dispatched at frame 8, swap at 11 → in flight at the split
	const streams = 2

	mkSchedules := func() [][]*tensor.Tensor {
		_, gen := buildBackbone(t, seed)
		return [][]*tensor.Tensor{
			frameSchedule(gen, 501, frames, 8, concept.Stealing, concept.Robbery),
			frameSchedule(gen, 502, frames, 12, concept.Stealing, concept.Explosion),
		}
	}

	for _, workers := range []int{1, 8} {
		for _, lag := range []int{0, 3} {
			prev := parallel.SetWorkers(workers)

			// Arm 1: uninterrupted.
			backbone, _ := buildBackbone(t, seed)
			schedules := mkSchedules()
			srvA, err := serve.NewServer(backbone, streams, checkpointCfg(lag))
			if err != nil {
				t.Fatal(err)
			}
			refTraces := make([]frameTrace, streams)
			for i := 0; i < streams; i++ {
				refTraces[i] = pumpPart(t, srvA, i, schedules[i], 0, frames, 4)
			}
			refStats, refNodes, refHist := drainAndStats(t, srvA, streams)

			// Arm 2, phase 1: run to the split and checkpoint through the
			// file layer (Save/Load), then tear the server down completely.
			backboneB, _ := buildBackbone(t, seed)
			srvB, err := serve.NewServer(backboneB, streams, checkpointCfg(lag))
			if err != nil {
				t.Fatal(err)
			}
			preTraces := make([]frameTrace, streams)
			for i := 0; i < streams; i++ {
				preTraces[i] = pumpPart(t, srvB, i, schedules[i], 0, split, 4)
			}
			cp, err := srvB.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < streams; i++ {
				if lag > 0 && cp.Streams[i].Pending == nil {
					t.Fatalf("lag %d: stream %d has no round in flight at the split — fixture is vacuous", lag, i)
				}
				if lag == 0 && cp.Streams[i].Pending != nil {
					t.Fatalf("synchronous stream %d checkpointed a pending round", i)
				}
				if cp.Streams[i].Frames != split {
					t.Fatalf("stream %d checkpointed at frame %d, want %d", i, cp.Streams[i].Frames, split)
				}
			}
			path := filepath.Join(t.TempDir(), "checkpoint.json")
			if err := snapshot.Save(path, cp); err != nil {
				t.Fatal(err)
			}
			drainAndStats(t, srvB, streams) // full teardown, adapted state discarded

			// Arm 2, phase 2: fresh backbone (rebuilt from the seed, as a
			// restarting process would), fresh server, restore, continue.
			loaded, err := snapshot.Load(path)
			if err != nil {
				t.Fatal(err)
			}
			backboneC, _ := buildBackbone(t, seed)
			srvC, err := serve.NewServer(backboneC, streams, checkpointCfg(lag))
			if err != nil {
				t.Fatal(err)
			}
			if err := srvC.Restore(loaded); err != nil {
				t.Fatal(err)
			}
			resTraces := make([]frameTrace, streams)
			for i := 0; i < streams; i++ {
				resTraces[i] = pumpPart(t, srvC, i, schedules[i], split, frames, 4)
			}
			resStats, resNodes, resHist := drainAndStats(t, srvC, streams)

			parallel.SetWorkers(prev)

			anyTriggered := false
			for i := 0; i < streams; i++ {
				full := concatTraces(preTraces[i], resTraces[i])
				if !equalTraces(refTraces[i], full) {
					t.Fatalf("workers %d lag %d: stream %d resumed trajectory differs from uninterrupted run\nref: scores %v applied %v\ngot: scores %v applied %v",
						workers, lag, i, refTraces[i].scores, refTraces[i].applied, full.scores, full.applied)
				}
				anyTriggered = anyTriggered || anyTrue(refTraces[i].triggered)
				if refStats[i].Frames != resStats[i].Frames ||
					refStats[i].AdaptRounds != resStats[i].AdaptRounds ||
					refStats[i].TriggeredRounds != resStats[i].TriggeredRounds ||
					refStats[i].PrunedNodes != resStats[i].PrunedNodes ||
					refStats[i].CreatedNodes != resStats[i].CreatedNodes {
					t.Fatalf("workers %d lag %d: stream %d stats mismatch: %+v vs %+v",
						workers, lag, i, refStats[i], resStats[i])
				}
				if len(refNodes[i]) != len(resNodes[i]) {
					t.Fatalf("workers %d lag %d: stream %d final node sets differ: %v vs %v",
						workers, lag, i, refNodes[i], resNodes[i])
				}
				for k := range refNodes[i] {
					if refNodes[i][k] != resNodes[i][k] {
						t.Fatalf("workers %d lag %d: stream %d final node sets differ: %v vs %v",
							workers, lag, i, refNodes[i], resNodes[i])
					}
				}
				if len(refHist[i]) != len(resHist[i]) {
					t.Fatalf("workers %d lag %d: stream %d score history length %d vs %d",
						workers, lag, i, len(refHist[i]), len(resHist[i]))
				}
				for k := range refHist[i] {
					if refHist[i][k] != resHist[i][k] {
						t.Fatalf("workers %d lag %d: stream %d retained score history differs at %d",
							workers, lag, i, k)
					}
				}
			}
			if !anyTriggered {
				t.Fatalf("workers %d lag %d: no adaptation round ever triggered — equivalence is vacuous", workers, lag)
			}
		}
	}
}

// TestCheckpointRestoreValidation pins the loud-failure contract of the
// restore path: wrong stream count, wrong per-stream configuration, and
// adaptive/static mode mismatches are all rejected.
func TestCheckpointRestoreValidation(t *testing.T) {
	backbone, _ := buildBackbone(t, 12)
	srv, err := serve.NewServer(backbone, 2, checkpointCfg(0))
	if err != nil {
		t.Fatal(err)
	}
	cp, err := srv.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	srv.Shutdown()

	// Stream count mismatch.
	b2, _ := buildBackbone(t, 12)
	one, err := serve.NewServer(b2, 1, checkpointCfg(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := one.Restore(cp); err == nil {
		t.Error("stream-count mismatch accepted")
	}
	one.Shutdown()

	// Config pin mismatch (different cadence).
	b3, _ := buildBackbone(t, 12)
	badCfg := checkpointCfg(0)
	badCfg.Stream.AdaptEveryFrames = 16
	mis, err := serve.NewServer(b3, 2, badCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := mis.Restore(cp); err == nil {
		t.Error("config mismatch accepted")
	}
	mis.Shutdown()

	// Adaptive checkpoint into a static server.
	b4, _ := buildBackbone(t, 12)
	statCfg := checkpointCfg(0)
	statCfg.Stream.AdaptEveryFrames = 0
	stat, err := serve.NewServer(b4, 2, statCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := stat.Restore(cp); err == nil {
		t.Error("adaptive checkpoint restored into static server")
	}
	stat.Shutdown()

	// Header tampering.
	bad := *cp
	bad.Version = snapshot.Version + 1
	b5, _ := buildBackbone(t, 12)
	fresh, err := serve.NewServer(b5, 2, checkpointCfg(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(&bad); err == nil {
		t.Error("version-mismatched checkpoint accepted")
	}
	fresh.Shutdown()
}

// TestServerAccessorValidation is the regression test for the harmonized
// accessor surface: Stream and Results validate ids and return errors like
// their siblings (Submit, StreamStats, Do) instead of panicking.
func TestServerAccessorValidation(t *testing.T) {
	backbone, _ := buildBackbone(t, 13)
	srv, err := serve.NewServer(backbone, 2, checkpointCfg(0))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	for _, id := range []int{-1, 2, 99} {
		if _, err := srv.Stream(id); err == nil {
			t.Errorf("Stream(%d) accepted", id)
		}
		if _, err := srv.Results(id); err == nil {
			t.Errorf("Results(%d) accepted", id)
		}
		if err := srv.Submit(id, nil); err == nil {
			t.Errorf("Submit(%d) accepted", id)
		}
		if _, err := srv.StreamStats(id); err == nil {
			t.Errorf("StreamStats(%d) accepted", id)
		}
		if err := srv.Do(id, func(*serve.Stream) {}); err == nil {
			t.Errorf("Do(%d) accepted", id)
		}
	}
	for id := 0; id < 2; id++ {
		st, err := srv.Stream(id)
		if err != nil || st == nil {
			t.Fatalf("Stream(%d): %v", id, err)
		}
		if st.ID() != id {
			t.Fatalf("Stream(%d) returned stream %d", id, st.ID())
		}
		ch, err := srv.Results(id)
		if err != nil || ch == nil {
			t.Fatalf("Results(%d): %v", id, err)
		}
	}
}

// TestStreamScoresBoundaries is the table test for score-history
// retention: for every retention length and processed count, Scores
// returns exactly the most recent min(h, processed) scores; retention 0
// disables recording, and negative retention is rejected at construction.
func TestStreamScoresBoundaries(t *testing.T) {
	backbone, gen := buildBackbone(t, 14)
	frames := frameSchedule(gen, 601, 7, 7, concept.Stealing, concept.Stealing)

	cfgFor := func(h int) serve.StreamConfig {
		cfg := streamCfg(0)
		cfg.AdaptEveryFrames = 0 // static: the table is about retention only
		cfg.ScoreHistory = h
		return cfg
	}

	if _, err := serve.NewStream(0, backbone, cfgFor(-1), rng.NewSource(1), nil); err == nil {
		t.Fatal("negative ScoreHistory accepted")
	}

	for _, h := range []int{0, 1, 2, 5, 7, 10} {
		det, err := backbone.CloneShared()
		if err != nil {
			t.Fatal(err)
		}
		st, err := serve.NewStream(0, det, cfgFor(h), rng.NewSource(1), nil)
		if err != nil {
			t.Fatal(err)
		}
		var all []float64
		for p := 0; p <= len(frames); p++ {
			got := st.Scores()
			if h <= 0 {
				if len(got) != 0 {
					t.Fatalf("h=%d processed=%d: retention disabled but got %d scores", h, p, len(got))
				}
			} else {
				want := all
				if len(want) > h {
					want = want[len(want)-h:]
				}
				if len(got) != len(want) {
					t.Fatalf("h=%d processed=%d: got %d scores, want %d", h, p, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("h=%d processed=%d: scores[%d] = %v, want %v", h, p, i, got[i], want[i])
					}
				}
			}
			if p < len(frames) {
				res := st.Process(frames[p])
				if res.Err != nil {
					t.Fatal(res.Err)
				}
				all = append(all, res.Score)
			}
		}
	}
}

// TestStreamConfigValidation pins the constructor's rejection of negative
// cadence and lag values.
func TestStreamConfigValidation(t *testing.T) {
	backbone, _ := buildBackbone(t, 15)
	bad := streamCfg(0)
	bad.AdaptEveryFrames = -1
	if _, err := serve.NewStream(0, backbone, bad, rng.NewSource(1), nil); err == nil {
		t.Error("negative AdaptEveryFrames accepted")
	}
	bad = streamCfg(0)
	bad.AdaptLagFrames = -2
	if _, err := serve.NewStream(0, backbone, bad, rng.NewSource(1), nil); err == nil {
		t.Error("negative AdaptLagFrames accepted")
	}
}
