package shard_test

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"testing"

	"edgekg/internal/bpe"
	"edgekg/internal/concept"
	"edgekg/internal/core"
	"edgekg/internal/dataset"
	"edgekg/internal/decision"
	"edgekg/internal/embed"
	"edgekg/internal/gnn"
	"edgekg/internal/kg"
	"edgekg/internal/kggen"
	"edgekg/internal/netserve"
	"edgekg/internal/oracle"
	"edgekg/internal/serve"
	"edgekg/internal/shard"
	"edgekg/internal/temporal"
)

const pixDim = 32

// buildBackbone is the small deployment fixture (the serve/netserve test
// fixture's twin): detector + frame generator, fully determined by seed.
func buildBackbone(t *testing.T, seed int64) (*core.Detector, *dataset.Generator) {
	t.Helper()
	ont := concept.Builtin()
	tok := bpe.Train(ont.Concepts(), 600)
	space, err := embed.NewSpace(tok, ont.Concepts(), embed.Config{Dim: 16, PixDim: pixDim, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	llm := oracle.NewSim(ont, rng, oracle.Config{EdgeProb: 0.9})
	g, _, err := kggen.Generate(llm, "Stealing",
		kggen.Options{Depth: 2, InitialFanout: 4, Fanout: 3, MaxCorrectionIters: 3, Tokenize: tok.Encode}, rng)
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.NewDetector(rng, space, []*kg.Graph{g}, core.Config{
		GNN:              gnn.Config{Width: 8},
		Temporal:         temporal.Config{InnerDim: 16, Heads: 2, Layers: 1, Window: 4},
		NumClasses:       2,
		Loss:             decision.DefaultLossConfig(),
		ScoreTemperature: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	dcfg := dataset.DefaultConfig()
	dcfg.FramesPerVideo = 16
	gen, err := dataset.NewGenerator(space, ont, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	return det, gen
}

// newFleet stands up nshards fresh workers (identical backbone seed, so
// two fleets from the same seed are bit-identical) behind a router.
func newFleet(t *testing.T, seed int64, nshards, slots int) *shard.Router {
	t.Helper()
	backends := make([]shard.Backend, nshards)
	for i := 0; i < nshards; i++ {
		backbone, _ := buildBackbone(t, seed)
		cfg := serve.DefaultConfig()
		scfg := serve.DefaultStreamConfig()
		scfg.MonitorN = 8
		scfg.MonitorLag = 4
		scfg.AdaptEveryFrames = 8
		scfg.AdaptLagFrames = 2
		scfg.Adapt.Patience = 1
		cfg.Stream = scfg
		cfg.BaseSeed = 100
		srv, err := serve.NewServer(backbone, slots, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Shutdown)
		h, err := netserve.NewHandler(srv, netserve.Options{FrameSize: pixDim})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		backends[i] = shard.NetBackend(netserve.NewClient(ts.URL), slots)
	}
	r, err := shard.New(backends, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// synthFrames precomputes each key's deterministic frame sequence so the
// Scenario.Frame callback is random-access and run-independent.
func synthFrames(t *testing.T, gen *dataset.Generator, keys []string, n int) map[string][][]float64 {
	t.Helper()
	out := make(map[string][][]float64, len(keys))
	for i, key := range keys {
		rng := rand.New(rand.NewSource(1000 + int64(i)))
		fs := make([][]float64, n)
		for j := range fs {
			cls := concept.Stealing
			if j >= n/2 {
				cls = concept.Robbery
			}
			fs[j] = append([]float64(nil), gen.Frame(rng, cls).Data()...)
		}
		out[key] = fs
	}
	return out
}

// TestRouterMigrationBitExact is the fleet-level acceptance test: 8
// concurrent streams over a 2-shard router, one stream checkpoint-
// migrated between shards mid-run — with an adaptation round in flight —
// and every key's score trace bit-identical to a fleet that never moved
// anything.
func TestRouterMigrationBitExact(t *testing.T) {
	const seed, nkeys, frames, migrateAt = 11, 8, 24, 17
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = "cam-" + string(rune('a'+i))
	}
	_, gen := buildBackbone(t, seed)
	fs := synthFrames(t, gen, keys, frames)
	sc := shard.Scenario{
		Keys:   keys,
		Frames: frames,
		Frame:  func(key string, seq int) []float64 { return fs[key][seq] },
	}
	ctx := context.Background()

	// Baseline fleet: no migration.
	base := newFleet(t, seed, 2, nkeys+1)
	baseRep, err := shard.Run(ctx, base, sc)
	if err != nil {
		t.Fatal(err)
	}
	if baseRep.OK != nkeys*frames || baseRep.Shed != 0 || baseRep.Failed != 0 {
		t.Fatalf("baseline run: %+v", baseRep)
	}

	// Fresh fleet: same seed, same scenario, but one key hops shards at
	// frame 17 — two frames into an adaptation round whose swap is still
	// pending, the hardest state to move.
	moved := newFleet(t, seed, 2, nkeys+1)
	rt, err := moved.Route(keys[0])
	if err != nil {
		t.Fatal(err)
	}
	msc := sc
	msc.MigrateKey = keys[0]
	msc.MigrateAt = migrateAt
	msc.MigrateTo = 1 - rt.Shard
	movedRep, err := shard.Run(ctx, moved, msc)
	if err != nil {
		t.Fatal(err)
	}
	if movedRep.OK != nkeys*frames {
		t.Fatalf("migrated run: %+v", movedRep)
	}
	if got, err := moved.Route(keys[0]); err != nil || got.Shard != msc.MigrateTo {
		t.Fatalf("key %q on shard %d after migration, want %d (%v)", keys[0], got.Shard, msc.MigrateTo, err)
	}

	for _, key := range keys {
		a, b := baseRep.Traces[key], movedRep.Traces[key]
		if len(a) != frames || len(b) != frames {
			t.Fatalf("key %q traces %d/%d, want %d", key, len(a), len(b), frames)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("key %q frame %d: migrated score %v != baseline %v", key, i, b[i], a[i])
			}
		}
	}
	if baseRep.P50Ms <= 0 || baseRep.P99Ms < baseRep.P50Ms || baseRep.P999Ms < baseRep.P99Ms {
		t.Fatalf("latency percentiles malformed: p50=%v p99=%v p999=%v",
			baseRep.P50Ms, baseRep.P99Ms, baseRep.P999Ms)
	}
}
