package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"edgekg/internal/netserve"
)

// fakeBackend is a scripted worker: it records submits and serves
// export/restore out of a byte map, with an optional block channel to
// hold submits in flight (for admission-control tests).
type fakeBackend struct {
	slots int
	block chan struct{} // when non-nil, SubmitFrame waits on it

	mu         sync.Mutex
	submits    map[int]int    // slot → frames received
	states     map[int][]byte // slot → restored state
	exported   map[int][]byte // slot → state ExportRaw hands out
	released   map[int]bool   // slot → Release called
	restoreErr error          // when non-nil, RestoreRaw fails with it
	submitErr  error          // when non-nil, SubmitFrame fails with it
	dead       bool           // Die was called; everything errors
}

func newFake(slots int) *fakeBackend {
	return &fakeBackend{
		slots:    slots,
		submits:  make(map[int]int),
		states:   make(map[int][]byte),
		exported: make(map[int][]byte),
		released: make(map[int]bool),
	}
}

func (f *fakeBackend) Slots() int { return f.slots }

func (f *fakeBackend) isDead() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dead
}

func (f *fakeBackend) Health(ctx context.Context) (netserve.Health, error) {
	if f.isDead() {
		return netserve.Health{}, errors.New("fake: connection refused")
	}
	return netserve.Health{OK: true, Streams: f.slots}, nil
}

func (f *fakeBackend) SubmitFrame(ctx context.Context, slot int, frame []float64) (netserve.FrameReply, error) {
	if f.block != nil {
		select {
		case <-f.block:
		case <-ctx.Done():
			return netserve.FrameReply{}, ctx.Err()
		}
	}
	if f.isDead() {
		return netserve.FrameReply{}, errors.New("fake: connection refused")
	}
	f.mu.Lock()
	if f.submitErr != nil {
		err := f.submitErr
		f.mu.Unlock()
		return netserve.FrameReply{}, err
	}
	f.submits[slot]++
	seq := f.submits[slot] - 1
	f.mu.Unlock()
	return netserve.FrameReply{Stream: slot, Seq: seq, Score: float64(slot*1000 + seq)}, nil
}

func (f *fakeBackend) ExportRaw(ctx context.Context, slot int) ([]byte, error) {
	if f.isDead() {
		return nil, errors.New("fake: connection refused")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.exported[slot]; ok {
		return s, nil
	}
	return []byte(fmt.Sprintf("state-%d", slot)), nil
}

func (f *fakeBackend) RestoreRaw(ctx context.Context, slot int, state []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.restoreErr != nil {
		return f.restoreErr
	}
	f.states[slot] = state
	return nil
}

func (f *fakeBackend) Release(ctx context.Context, slot int) error {
	if f.isDead() {
		return errors.New("fake: connection refused")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.released[slot] = true
	return nil
}

func (f *fakeBackend) Die(ctx context.Context) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dead = true
	return nil
}

func newTestRouter(t *testing.T, cfg Config, fakes ...*fakeBackend) *Router {
	t.Helper()
	backends := make([]Backend, len(fakes))
	for i, f := range fakes {
		backends[i] = f
	}
	r, err := New(backends, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRouteStableAndSticky pins that a key's placement is deterministic
// (hash-home shard) and sticky across repeated lookups, and that distinct
// keys spread across shards.
func TestRouteStableAndSticky(t *testing.T) {
	r := newTestRouter(t, Config{}, newFake(64), newFake(64))
	seen := map[int]int{}
	for i := 0; i < 16; i++ {
		key := fmt.Sprintf("cam-%d", i)
		rt, err := r.Route(key)
		if err != nil {
			t.Fatal(err)
		}
		again, err := r.Route(key)
		if err != nil {
			t.Fatal(err)
		}
		if rt != again {
			t.Fatalf("key %q moved: %v then %v", key, rt, again)
		}
		if rt.Shard != r.hashShard(key) {
			t.Fatalf("key %q on shard %d, hash-home is %d", key, rt.Shard, r.hashShard(key))
		}
		seen[rt.Shard]++
	}
	if len(seen) != 2 {
		t.Fatalf("16 keys landed on %d of 2 shards: %v", len(seen), seen)
	}
}

// TestRouteSlotExhaustion pins that allocation fails loudly once a
// shard's slots run out, without disturbing already-placed keys.
func TestRouteSlotExhaustion(t *testing.T) {
	r := newTestRouter(t, Config{}, newFake(2))
	if _, err := r.Route("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Route("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Route("c"); err == nil {
		t.Fatal("third key on a 2-slot shard: want out-of-slots error")
	}
	if rt, err := r.Route("a"); err != nil || rt.Slot != 0 {
		t.Fatalf("existing key perturbed: %v, %v", rt, err)
	}
}

// TestSubmitAdmissionShed pins the per-shard in-flight bound: with
// MaxInflight=2 and two submits parked in flight, a third is shed with
// ErrOverload and counted, and capacity recovers once the parked submits
// finish.
func TestSubmitAdmissionShed(t *testing.T) {
	f := newFake(8)
	f.block = make(chan struct{})
	r := newTestRouter(t, Config{MaxInflight: 2}, f)

	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := r.Submit(ctx, fmt.Sprintf("cam-%d", i), []float64{1}); err != nil {
				t.Errorf("parked submit %d: %v", i, err)
			}
		}(i)
	}
	// Wait until both parked submits hold in-flight tokens.
	deadline := time.Now().Add(5 * time.Second)
	for atomic.LoadInt64(&r.inflight[0]) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("parked submits never took their in-flight tokens")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := r.Submit(ctx, "cam-2", []float64{1}); !errors.Is(err, ErrOverload) {
		t.Fatalf("submit over the bound: got %v, want ErrOverload", err)
	}
	if got := r.Shed(); got != 1 {
		t.Fatalf("Shed() = %d, want 1", got)
	}

	close(f.block)
	wg.Wait()
	f.block = nil
	if _, err := r.Submit(ctx, "cam-2", []float64{1}); err != nil {
		t.Fatalf("submit after capacity recovered: %v", err)
	}
}

// TestMigrateMovesStateAndRepoints pins the migration protocol: the
// source slot's exported bytes land verbatim on a fresh target slot, the
// route repoints, subsequent submits go to the target, and the vacated
// slot is never reallocated.
func TestMigrateMovesStateAndRepoints(t *testing.T) {
	a, b := newFake(4), newFake(4)
	r := newTestRouter(t, Config{}, a, b)
	ctx := context.Background()

	// Place a key explicitly on shard 0 (try prefixes until one hashes there).
	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("cam-%d", i)
		if r.hashShard(key) == 0 {
			break
		}
	}
	from, err := r.Route(key)
	if err != nil {
		t.Fatal(err)
	}
	a.mu.Lock()
	a.exported[from.Slot] = []byte("precious-state")
	a.mu.Unlock()

	to, err := r.Migrate(ctx, key, 1)
	if err != nil {
		t.Fatal(err)
	}
	if to.Shard != 1 {
		t.Fatalf("migrated to shard %d, want 1", to.Shard)
	}
	b.mu.Lock()
	got := string(b.states[to.Slot])
	b.mu.Unlock()
	if got != "precious-state" {
		t.Fatalf("target slot state = %q, want the exported bytes", got)
	}

	if _, err := r.Submit(ctx, key, []float64{1}); err != nil {
		t.Fatal(err)
	}
	b.mu.Lock()
	n := b.submits[to.Slot]
	b.mu.Unlock()
	if n != 1 {
		t.Fatalf("post-migration submit did not reach target slot (got %d frames)", n)
	}

	// A migration to the current shard is a no-op.
	if rt, err := r.Migrate(ctx, key, 1); err != nil || rt != to {
		t.Fatalf("same-shard migrate: %v, %v", rt, err)
	}

	// The vacated source slot must not be handed to a new key.
	for i := 0; i < 3; i++ {
		k := fmt.Sprintf("fresh-%d-%d", i, i)
		if r.hashShard(k) != 0 {
			continue
		}
		rt, err := r.Route(k)
		if err != nil {
			t.Fatal(err)
		}
		if rt.Shard == from.Shard && rt.Slot == from.Slot {
			t.Fatalf("vacated slot %v reallocated to %q", from, k)
		}
	}

	if _, err := r.Migrate(ctx, "never-seen", 1); err == nil {
		t.Fatal("migrating an unknown key: want error")
	}
	if _, err := r.Migrate(ctx, key, 9); err == nil {
		t.Fatal("migrating to a nonexistent shard: want error")
	}
}

// TestLoadgenClosedLoopTraces pins the load generator's closed-loop mode:
// every frame scored (nothing shed), per-key traces complete and in
// submission order.
func TestLoadgenClosedLoopTraces(t *testing.T) {
	f := newFake(8)
	r := newTestRouter(t, Config{}, f)
	rep, err := Run(context.Background(), r, Scenario{
		Keys:   []string{"cam-0", "cam-1", "cam-2"},
		Frames: 5,
		Frame:  func(key string, seq int) []float64 { return []float64{float64(seq)} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 15 || rep.OK != 15 || rep.Shed != 0 || rep.Failed != 0 {
		t.Fatalf("closed-loop counts: %+v", rep)
	}
	for key, tr := range rep.Traces {
		if len(tr) != 5 {
			t.Fatalf("key %q trace has %d scores, want 5", key, len(tr))
		}
		rt, _ := r.Route(key)
		for seq, sc := range tr {
			if want := float64(rt.Slot*1000 + seq); sc != want {
				t.Fatalf("key %q seq %d: score %v, want %v (out of order?)", key, seq, sc, want)
			}
		}
	}
}

// TestLoadgenOpenLoopShedsUnderOverload pins that open-loop load against
// a saturated shard sheds (counted, not failed) rather than erroring out.
func TestLoadgenOpenLoopShedsUnderOverload(t *testing.T) {
	f := newFake(8)
	f.block = make(chan struct{})
	r := newTestRouter(t, Config{MaxInflight: 1}, f)

	done := make(chan struct{})
	go func() {
		defer close(done)
		rep, err := Run(context.Background(), r, Scenario{
			Keys:   []string{"cam-0", "cam-1", "cam-2", "cam-3"},
			Frames: 4,
			Rate:   200, // far beyond what one blocked in-flight token allows
			Frame:  func(key string, seq int) []float64 { return []float64{1} },
		})
		if err != nil {
			t.Errorf("open-loop run: %v", err)
			return
		}
		if rep.Shed == 0 {
			t.Errorf("saturated shard shed nothing: %+v", rep)
		}
		if rep.Failed != 0 {
			t.Errorf("sheds misclassified as failures: %+v", rep)
		}
		if rep.Sent != 16 {
			t.Errorf("Sent = %d, want 16", rep.Sent)
		}
	}()

	// Let the generator saturate, then unblock so in-flight frames finish.
	time.Sleep(100 * time.Millisecond)
	close(f.block)
	<-done
}

// TestMigrateRollbackOnRestoreFailure is the leaked-slot regression: when
// the restore on the target worker fails, the reserved target slot must be
// rolled back — target capacity unchanged, the route still pointing at the
// (still serving) source slot, and the source slot NOT released.
func TestMigrateRollbackOnRestoreFailure(t *testing.T) {
	a, b := newFake(4), newFake(4)
	r := newTestRouter(t, Config{}, a, b)
	ctx := context.Background()

	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("cam-%d", i)
		if r.hashShard(key) == 0 {
			break
		}
	}
	from, err := r.Route(key)
	if err != nil {
		t.Fatal(err)
	}
	before := r.SlotsInUse(1)

	b.mu.Lock()
	b.restoreErr = errors.New("fake: disk full")
	b.mu.Unlock()
	if _, err := r.Migrate(ctx, key, 1); err == nil {
		t.Fatal("migrate with a failing restore succeeded")
	}
	if got := r.SlotsInUse(1); got != before {
		t.Fatalf("failed migration leaked a slot: shard 1 has %d in use, want %d", got, before)
	}
	if rt, err := r.Route(key); err != nil || rt != from {
		t.Fatalf("failed migration moved the route: %v, %v (want %v)", rt, err, from)
	}
	a.mu.Lock()
	rel := a.released[from.Slot]
	a.mu.Unlock()
	if rel {
		t.Fatal("failed migration released the still-serving source slot")
	}

	// The rolled-back capacity is genuinely reusable: clear the fault and
	// the same migration succeeds into the same capacity.
	b.mu.Lock()
	b.restoreErr = nil
	b.mu.Unlock()
	to, err := r.Migrate(ctx, key, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.SlotsInUse(1) != before+1 {
		t.Fatalf("successful migration after rollback: shard 1 has %d in use, want %d", r.SlotsInUse(1), before+1)
	}
	if to.Shard != 1 {
		t.Fatalf("migrated to %v", to)
	}
}

// TestMigrateReleasesSourceSlot pins the retained-state fix: after a
// successful migration the source worker is told to drop the moved
// stream's now-duplicate state.
func TestMigrateReleasesSourceSlot(t *testing.T) {
	a, b := newFake(4), newFake(4)
	r := newTestRouter(t, Config{}, a, b)
	ctx := context.Background()

	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("cam-%d", i)
		if r.hashShard(key) == 0 {
			break
		}
	}
	from, err := r.Route(key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Migrate(ctx, key, 1); err != nil {
		t.Fatal(err)
	}
	a.mu.Lock()
	rel := a.released[from.Slot]
	a.mu.Unlock()
	if !rel {
		t.Fatal("successful migration left the source slot's state resident")
	}
}

// TestSubmitShardDownFailsFast pins the down flag: submits to a marked
// shard return ErrShardDown without touching the backend, and MarkUp
// restores service.
func TestSubmitShardDownFailsFast(t *testing.T) {
	f := newFake(4)
	r := newTestRouter(t, Config{}, f)
	ctx := context.Background()
	if _, err := r.Submit(ctx, "cam-0", []float64{1}); err != nil {
		t.Fatal(err)
	}
	r.MarkDown(0)
	if _, err := r.Submit(ctx, "cam-0", []float64{1}); !errors.Is(err, ErrShardDown) {
		t.Fatalf("submit to a down shard: %v, want ErrShardDown", err)
	}
	f.mu.Lock()
	n := f.submits[0]
	f.mu.Unlock()
	if n != 1 {
		t.Fatalf("down shard still saw %d submits, want 1", n)
	}
	r.MarkUp(0)
	if _, err := r.Submit(ctx, "cam-0", []float64{1}); err != nil {
		t.Fatalf("submit after MarkUp: %v", err)
	}
}

// TestRouteSlotExhaustionAcrossShards pins per-shard exhaustion in a
// fleet: a full home shard fails its keys loudly while the other shard
// keeps allocating — capacity is per-shard, never silently borrowed
// (failover rehoming is the only cross-shard placement).
func TestRouteSlotExhaustionAcrossShards(t *testing.T) {
	r := newTestRouter(t, Config{}, newFake(1), newFake(1))
	byShard := map[int][]string{}
	for i := 0; len(byShard[0]) < 2 || len(byShard[1]) < 2; i++ {
		key := fmt.Sprintf("cam-%d", i)
		s := r.hashShard(key)
		byShard[s] = append(byShard[s], key)
	}
	for s := 0; s < 2; s++ {
		if _, err := r.Route(byShard[s][0]); err != nil {
			t.Fatalf("shard %d first key: %v", s, err)
		}
	}
	for s := 0; s < 2; s++ {
		if _, err := r.Route(byShard[s][1]); err == nil {
			t.Fatalf("shard %d second key on a 1-slot shard: want out-of-slots error", s)
		}
	}
	// Existing placements undisturbed by the failures.
	for s := 0; s < 2; s++ {
		if rt, err := r.Route(byShard[s][0]); err != nil || rt.Shard != s || rt.Slot != 0 {
			t.Fatalf("shard %d key perturbed: %v, %v", s, rt, err)
		}
	}
}

// TestBusyAndOverloadPassThroughConcurrent pins shed classification under
// concurrency: worker-side ErrBusy passes through the router untouched,
// router-side ErrOverload is produced at the admission bound, and no
// submit ever turns into a different error class.
func TestBusyAndOverloadPassThroughConcurrent(t *testing.T) {
	busy := newFake(8)
	busy.mu.Lock()
	busy.submitErr = fmt.Errorf("wrapped: %w", netserve.ErrBusy)
	busy.mu.Unlock()
	r := newTestRouter(t, Config{MaxInflight: 2}, busy)
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = r.Submit(ctx, fmt.Sprintf("cam-%d", i%4), []float64{1})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, netserve.ErrBusy) && !errors.Is(err, ErrOverload) {
			t.Fatalf("submit %d: %v, want ErrBusy or ErrOverload", i, err)
		}
	}
}

// TestFailoverRehomesFromSnapshot drives the failover engine against
// scripted backends: the dead shard's keys restore from their cached
// snapshots on the survivor, the logged frames replay, routes repoint, and
// a key without a snapshot is reported rather than silently dropped.
func TestFailoverRehomesFromSnapshot(t *testing.T) {
	a, b := newFake(8), newFake(8)
	r := newTestRouter(t, Config{SnapshotEvery: 2}, a, b)
	ctx := context.Background()

	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("cam-%d", i)
		if r.hashShard(key) == 0 {
			break
		}
	}
	from, err := r.Route(key)
	if err != nil {
		t.Fatal(err)
	}
	a.mu.Lock()
	a.exported[from.Slot] = []byte("armed-state")
	a.mu.Unlock()
	// 3 scored frames with SnapshotEvery=2: snapshot refreshed after the
	// second, one frame left in the replay log.
	for i := 0; i < 3; i++ {
		if _, err := r.Submit(ctx, key, []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}

	rep, err := r.Failover(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rehomed) != 1 || rep.FramesReplayed != 1 {
		t.Fatalf("failover report: %+v", rep)
	}
	to, ok := rep.Rehomed[key]
	if !ok || to.Shard != 1 {
		t.Fatalf("key rehomed to %v", to)
	}
	b.mu.Lock()
	restored := string(b.states[to.Slot])
	replayed := b.submits[to.Slot]
	b.mu.Unlock()
	if restored != "armed-state" {
		t.Fatalf("survivor slot restored %q, want the cached snapshot", restored)
	}
	if replayed != 1 {
		t.Fatalf("survivor slot saw %d replay frames, want 1", replayed)
	}
	if rt, err := r.Route(key); err != nil || rt != to {
		t.Fatalf("route after failover: %v, %v (want %v)", rt, err, to)
	}
	if !r.Down(0) {
		t.Fatal("failover did not mark the shard down")
	}
	// Post-failover submits flow to the survivor.
	if _, err := r.Submit(ctx, key, []float64{9}); err != nil {
		t.Fatal(err)
	}

	// A key the router never snapshotted (routed but no frame submitted
	// after arming) is reported, not silently lost.
	r2 := newTestRouter(t, Config{SnapshotEvery: 2}, newFake(2), newFake(2))
	var k2 string
	for i := 0; ; i++ {
		k2 = fmt.Sprintf("cam-%d", i)
		if r2.hashShard(k2) == 0 {
			break
		}
	}
	if _, err := r2.Route(k2); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Failover(ctx, 0); err == nil {
		t.Fatal("failover of an unsnapshotted key: want a reported error")
	}
}
