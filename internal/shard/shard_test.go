package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"edgekg/internal/netserve"
)

// fakeBackend is a scripted worker: it records submits and serves
// export/restore out of a byte map, with an optional block channel to
// hold submits in flight (for admission-control tests).
type fakeBackend struct {
	slots int
	block chan struct{} // when non-nil, SubmitFrame waits on it

	mu       sync.Mutex
	submits  map[int]int    // slot → frames received
	states   map[int][]byte // slot → restored state
	exported map[int][]byte // slot → state ExportRaw hands out
}

func newFake(slots int) *fakeBackend {
	return &fakeBackend{
		slots:    slots,
		submits:  make(map[int]int),
		states:   make(map[int][]byte),
		exported: make(map[int][]byte),
	}
}

func (f *fakeBackend) Slots() int { return f.slots }

func (f *fakeBackend) SubmitFrame(ctx context.Context, slot int, frame []float64) (netserve.FrameReply, error) {
	if f.block != nil {
		select {
		case <-f.block:
		case <-ctx.Done():
			return netserve.FrameReply{}, ctx.Err()
		}
	}
	f.mu.Lock()
	f.submits[slot]++
	seq := f.submits[slot] - 1
	f.mu.Unlock()
	return netserve.FrameReply{Stream: slot, Seq: seq, Score: float64(slot*1000 + seq)}, nil
}

func (f *fakeBackend) ExportRaw(ctx context.Context, slot int) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.exported[slot]; ok {
		return s, nil
	}
	return []byte(fmt.Sprintf("state-%d", slot)), nil
}

func (f *fakeBackend) RestoreRaw(ctx context.Context, slot int, state []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.states[slot] = state
	return nil
}

func newTestRouter(t *testing.T, cfg Config, fakes ...*fakeBackend) *Router {
	t.Helper()
	backends := make([]Backend, len(fakes))
	for i, f := range fakes {
		backends[i] = f
	}
	r, err := New(backends, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRouteStableAndSticky pins that a key's placement is deterministic
// (hash-home shard) and sticky across repeated lookups, and that distinct
// keys spread across shards.
func TestRouteStableAndSticky(t *testing.T) {
	r := newTestRouter(t, Config{}, newFake(64), newFake(64))
	seen := map[int]int{}
	for i := 0; i < 16; i++ {
		key := fmt.Sprintf("cam-%d", i)
		rt, err := r.Route(key)
		if err != nil {
			t.Fatal(err)
		}
		again, err := r.Route(key)
		if err != nil {
			t.Fatal(err)
		}
		if rt != again {
			t.Fatalf("key %q moved: %v then %v", key, rt, again)
		}
		if rt.Shard != r.hashShard(key) {
			t.Fatalf("key %q on shard %d, hash-home is %d", key, rt.Shard, r.hashShard(key))
		}
		seen[rt.Shard]++
	}
	if len(seen) != 2 {
		t.Fatalf("16 keys landed on %d of 2 shards: %v", len(seen), seen)
	}
}

// TestRouteSlotExhaustion pins that allocation fails loudly once a
// shard's slots run out, without disturbing already-placed keys.
func TestRouteSlotExhaustion(t *testing.T) {
	r := newTestRouter(t, Config{}, newFake(2))
	if _, err := r.Route("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Route("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Route("c"); err == nil {
		t.Fatal("third key on a 2-slot shard: want out-of-slots error")
	}
	if rt, err := r.Route("a"); err != nil || rt.Slot != 0 {
		t.Fatalf("existing key perturbed: %v, %v", rt, err)
	}
}

// TestSubmitAdmissionShed pins the per-shard in-flight bound: with
// MaxInflight=2 and two submits parked in flight, a third is shed with
// ErrOverload and counted, and capacity recovers once the parked submits
// finish.
func TestSubmitAdmissionShed(t *testing.T) {
	f := newFake(8)
	f.block = make(chan struct{})
	r := newTestRouter(t, Config{MaxInflight: 2}, f)

	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := r.Submit(ctx, fmt.Sprintf("cam-%d", i), []float64{1}); err != nil {
				t.Errorf("parked submit %d: %v", i, err)
			}
		}(i)
	}
	// Wait until both parked submits hold in-flight tokens.
	deadline := time.Now().Add(5 * time.Second)
	for atomic.LoadInt64(&r.inflight[0]) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("parked submits never took their in-flight tokens")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := r.Submit(ctx, "cam-2", []float64{1}); !errors.Is(err, ErrOverload) {
		t.Fatalf("submit over the bound: got %v, want ErrOverload", err)
	}
	if got := r.Shed(); got != 1 {
		t.Fatalf("Shed() = %d, want 1", got)
	}

	close(f.block)
	wg.Wait()
	f.block = nil
	if _, err := r.Submit(ctx, "cam-2", []float64{1}); err != nil {
		t.Fatalf("submit after capacity recovered: %v", err)
	}
}

// TestMigrateMovesStateAndRepoints pins the migration protocol: the
// source slot's exported bytes land verbatim on a fresh target slot, the
// route repoints, subsequent submits go to the target, and the vacated
// slot is never reallocated.
func TestMigrateMovesStateAndRepoints(t *testing.T) {
	a, b := newFake(4), newFake(4)
	r := newTestRouter(t, Config{}, a, b)
	ctx := context.Background()

	// Place a key explicitly on shard 0 (try prefixes until one hashes there).
	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("cam-%d", i)
		if r.hashShard(key) == 0 {
			break
		}
	}
	from, err := r.Route(key)
	if err != nil {
		t.Fatal(err)
	}
	a.mu.Lock()
	a.exported[from.Slot] = []byte("precious-state")
	a.mu.Unlock()

	to, err := r.Migrate(ctx, key, 1)
	if err != nil {
		t.Fatal(err)
	}
	if to.Shard != 1 {
		t.Fatalf("migrated to shard %d, want 1", to.Shard)
	}
	b.mu.Lock()
	got := string(b.states[to.Slot])
	b.mu.Unlock()
	if got != "precious-state" {
		t.Fatalf("target slot state = %q, want the exported bytes", got)
	}

	if _, err := r.Submit(ctx, key, []float64{1}); err != nil {
		t.Fatal(err)
	}
	b.mu.Lock()
	n := b.submits[to.Slot]
	b.mu.Unlock()
	if n != 1 {
		t.Fatalf("post-migration submit did not reach target slot (got %d frames)", n)
	}

	// A migration to the current shard is a no-op.
	if rt, err := r.Migrate(ctx, key, 1); err != nil || rt != to {
		t.Fatalf("same-shard migrate: %v, %v", rt, err)
	}

	// The vacated source slot must not be handed to a new key.
	for i := 0; i < 3; i++ {
		k := fmt.Sprintf("fresh-%d-%d", i, i)
		if r.hashShard(k) != 0 {
			continue
		}
		rt, err := r.Route(k)
		if err != nil {
			t.Fatal(err)
		}
		if rt.Shard == from.Shard && rt.Slot == from.Slot {
			t.Fatalf("vacated slot %v reallocated to %q", from, k)
		}
	}

	if _, err := r.Migrate(ctx, "never-seen", 1); err == nil {
		t.Fatal("migrating an unknown key: want error")
	}
	if _, err := r.Migrate(ctx, key, 9); err == nil {
		t.Fatal("migrating to a nonexistent shard: want error")
	}
}

// TestLoadgenClosedLoopTraces pins the load generator's closed-loop mode:
// every frame scored (nothing shed), per-key traces complete and in
// submission order.
func TestLoadgenClosedLoopTraces(t *testing.T) {
	f := newFake(8)
	r := newTestRouter(t, Config{}, f)
	rep, err := Run(context.Background(), r, Scenario{
		Keys:   []string{"cam-0", "cam-1", "cam-2"},
		Frames: 5,
		Frame:  func(key string, seq int) []float64 { return []float64{float64(seq)} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 15 || rep.OK != 15 || rep.Shed != 0 || rep.Failed != 0 {
		t.Fatalf("closed-loop counts: %+v", rep)
	}
	for key, tr := range rep.Traces {
		if len(tr) != 5 {
			t.Fatalf("key %q trace has %d scores, want 5", key, len(tr))
		}
		rt, _ := r.Route(key)
		for seq, sc := range tr {
			if want := float64(rt.Slot*1000 + seq); sc != want {
				t.Fatalf("key %q seq %d: score %v, want %v (out of order?)", key, seq, sc, want)
			}
		}
	}
}

// TestLoadgenOpenLoopShedsUnderOverload pins that open-loop load against
// a saturated shard sheds (counted, not failed) rather than erroring out.
func TestLoadgenOpenLoopShedsUnderOverload(t *testing.T) {
	f := newFake(8)
	f.block = make(chan struct{})
	r := newTestRouter(t, Config{MaxInflight: 1}, f)

	done := make(chan struct{})
	go func() {
		defer close(done)
		rep, err := Run(context.Background(), r, Scenario{
			Keys:   []string{"cam-0", "cam-1", "cam-2", "cam-3"},
			Frames: 4,
			Rate:   200, // far beyond what one blocked in-flight token allows
			Frame:  func(key string, seq int) []float64 { return []float64{1} },
		})
		if err != nil {
			t.Errorf("open-loop run: %v", err)
			return
		}
		if rep.Shed == 0 {
			t.Errorf("saturated shard shed nothing: %+v", rep)
		}
		if rep.Failed != 0 {
			t.Errorf("sheds misclassified as failures: %+v", rep)
		}
		if rep.Sent != 16 {
			t.Errorf("Sent = %d, want 16", rep.Sent)
		}
	}()

	// Let the generator saturate, then unblock so in-flight frames finish.
	time.Sleep(100 * time.Millisecond)
	close(f.block)
	<-done
}
