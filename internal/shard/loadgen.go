package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"edgekg/internal/netserve"
)

// Scenario describes one load-generation run against a Router.
type Scenario struct {
	// Keys are the stream keys, one camera feed each.
	Keys []string
	// Frames is how many frames each key submits.
	Frames int
	// Rate is each key's open-loop arrival rate in frames/second. Rate ≤ 0
	// runs closed-loop: the next frame is submitted as soon as the
	// previous result returns — the mode deterministic continuity runs use
	// (nothing is ever shed, every frame is scored).
	Rate float64
	// BurstEvery/BurstSize overlay bursts on the open-loop schedule: every
	// BurstEvery-th arrival, the following BurstSize arrivals share its
	// scheduled instant (a camera backlog flushing at once). Ignored
	// closed-loop.
	BurstEvery, BurstSize int
	// Frame synthesises the key's seq-th frame (required). It must be
	// deterministic in (key, seq) for runs to be comparable.
	Frame func(key string, seq int) []float64
	// MigrateKey, when non-empty, is migrated to shard MigrateTo
	// immediately before its frame MigrateAt is submitted — the key's feed
	// is quiescent at that point, as Migrate requires.
	MigrateKey string
	MigrateAt  int
	MigrateTo  int
	// SubmitTimeout bounds each submit round trip. Defaults to 60s.
	SubmitTimeout time.Duration
	// Kill, when set, kills a worker mid-run: immediately before Keys[0]
	// submits its frame Kill.At, the run sends the Kill.Shard worker a
	// die request (an abrupt stop — in-flight connections are severed,
	// nothing drains). Requires failover to be armed (Config.SnapshotEvery
	// and a running HealthMonitor), or every frame routed to the dead
	// shard fails once RecoverTimeout lapses.
	Kill *Kill
	// RecoverTimeout bounds how long one frame retries through transient
	// errors and ErrShardDown before the run fails — the window failover
	// has to detect the death and rehome the key. Defaults to 30s.
	RecoverTimeout time.Duration
}

// Kill names a worker to crash mid-run and when.
type Kill struct {
	// Shard is the worker to kill.
	Shard int
	// At kills immediately before Keys[0]'s frame At is submitted.
	At int
}

// Report is one run's outcome. Latency percentiles are measured from
// each frame's scheduled arrival (not its actual send), so queueing delay
// behind a slow stream counts — the open-loop convention that avoids
// coordinated omission.
type Report struct {
	Sent, OK int
	Shed     int // router admission + worker 429 + local overload drops
	Failed   int
	// Retried counts extra submit attempts spent riding out transient
	// errors and ErrShardDown (a frame that eventually scored counts in
	// OK once; its failed attempts count here).
	Retried                     int
	Elapsed                     time.Duration
	Throughput                  float64 // scored frames per second, aggregate
	P50Ms, P99Ms, P999Ms, MaxMs float64
	// Traces are each key's scores in submission order (closed-loop runs
	// only — open-loop sheds leave gaps and traces are not recorded).
	Traces map[string][]float64
}

// Run drives the scenario: one goroutine per key submitting sequentially
// (a camera's feed is ordered), open-loop pacing per Rate, migration per
// MigrateKey. A context cancellation stops the run with its error.
func Run(ctx context.Context, r *Router, sc Scenario) (*Report, error) {
	if len(sc.Keys) == 0 || sc.Frames < 1 {
		return nil, fmt.Errorf("shard: scenario needs keys and frames")
	}
	if sc.Frame == nil {
		return nil, fmt.Errorf("shard: scenario needs a Frame synthesiser")
	}
	timeout := sc.SubmitTimeout
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	recover := sc.RecoverTimeout
	if recover <= 0 {
		recover = 30 * time.Second
	}
	closed := sc.Rate <= 0

	// Pre-route every key in declared order: placement becomes a pure
	// function of (keys, fleet shape) instead of goroutine scheduling, so
	// two runs of the same scenario land every key on the same slot —
	// which is what makes their score traces comparable bit-exactly. Slot
	// exhaustion surfaces here, before any frame is sent.
	for _, key := range sc.Keys {
		if _, err := r.Route(key); err != nil {
			return nil, err
		}
	}

	var mu sync.Mutex
	rep := &Report{}
	if closed {
		rep.Traces = make(map[string][]float64, len(sc.Keys))
	}
	var latencies []float64
	var runErr error
	fail := func(err error) {
		mu.Lock()
		if runErr == nil {
			runErr = err
		}
		mu.Unlock()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for _, key := range sc.Keys {
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			arrivals := arrivalSchedule(start, sc)
			var scores []float64
			for seq := 0; seq < sc.Frames; seq++ {
				if ctx.Err() != nil {
					fail(ctx.Err())
					return
				}
				if key == sc.MigrateKey && seq == sc.MigrateAt {
					if _, err := r.Migrate(ctx, key, sc.MigrateTo); err != nil {
						fail(err)
						return
					}
				}
				if sc.Kill != nil && key == sc.Keys[0] && seq == sc.Kill.At {
					// The die request is fire-and-forget: the worker cuts
					// its connections before replying, and transport errors
					// are the expected shape of success.
					dctx, dcancel := context.WithTimeout(ctx, timeout)
					err := r.Backend(sc.Kill.Shard).Die(dctx)
					dcancel()
					if err != nil && !netserve.IsTransient(err) {
						fail(fmt.Errorf("shard: kill shard %d: %w", sc.Kill.Shard, err))
						return
					}
				}
				sched := start
				if !closed {
					sched = arrivals[seq]
					if d := time.Until(sched); d > 0 {
						select {
						case <-time.After(d):
						case <-ctx.Done():
							fail(ctx.Err())
							return
						}
					}
				} else {
					sched = time.Now()
				}
				frame := sc.Frame(key, seq)
				sctx, cancel := context.WithTimeout(ctx, timeout)
				res, err := r.Submit(sctx, key, frame)
				cancel()
				// Ride out a worker crash: transient transport errors (the
				// in-flight frame died with its connection) and ErrShardDown
				// (the route still points at the corpse) retry the same
				// frame until failover rehomes the key onto a survivor. The
				// failed frame is never in the router's replay log — only
				// scored frames are — so the retry is the frame's first and
				// only scoring on the new home.
				if err != nil && (errors.Is(err, ErrShardDown) || netserve.IsTransient(err)) {
					deadline := time.Now().Add(recover)
					for time.Now().Before(deadline) {
						select {
						case <-time.After(50 * time.Millisecond):
						case <-ctx.Done():
							fail(ctx.Err())
							return
						}
						mu.Lock()
						rep.Retried++
						mu.Unlock()
						sctx, cancel = context.WithTimeout(ctx, timeout)
						res, err = r.Submit(sctx, key, frame)
						cancel()
						if err == nil || (!errors.Is(err, ErrShardDown) && !netserve.IsTransient(err)) {
							break
						}
					}
				}
				lat := time.Since(sched)
				mu.Lock()
				rep.Sent++
				switch {
				case err == nil:
					rep.OK++
					latencies = append(latencies, float64(lat.Nanoseconds())/1e6)
					if closed {
						scores = append(scores, res.Score)
					}
				case errors.Is(err, ErrOverload) || errors.Is(err, netserve.ErrBusy):
					rep.Shed++
				default:
					rep.Failed++
					mu.Unlock()
					fail(fmt.Errorf("shard: key %q frame %d: %w", key, seq, err))
					return
				}
				mu.Unlock()
			}
			if closed {
				mu.Lock()
				rep.Traces[key] = scores
				mu.Unlock()
			}
		}(key)
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	if rep.Elapsed > 0 {
		rep.Throughput = float64(rep.OK) / rep.Elapsed.Seconds()
	}
	rep.P50Ms = percentile(latencies, 0.50)
	rep.P99Ms = percentile(latencies, 0.99)
	rep.P999Ms = percentile(latencies, 0.999)
	rep.MaxMs = percentile(latencies, 1)
	if runErr != nil {
		return rep, runErr
	}
	return rep, nil
}

// arrivalSchedule lays out one key's open-loop arrival instants: fixed
// rate, with every BurstEvery-th arrival followed by BurstSize arrivals
// at the same instant.
func arrivalSchedule(start time.Time, sc Scenario) []time.Time {
	if sc.Rate <= 0 {
		return nil
	}
	interval := time.Duration(float64(time.Second) / sc.Rate)
	out := make([]time.Time, sc.Frames)
	t := start
	burst := 0
	for i := range out {
		out[i] = t
		if burst > 0 {
			burst--
			continue // burst arrivals share the instant
		}
		if sc.BurstEvery > 0 && sc.BurstSize > 0 && (i+1)%sc.BurstEvery == 0 {
			burst = sc.BurstSize
		}
		t = t.Add(interval)
	}
	return out
}

// percentile returns the q-quantile of the samples in milliseconds
// (nearest-rank; q=1 is the max). NaN-free: returns 0 on no samples.
func percentile(ms []float64, q float64) float64 {
	if len(ms) == 0 {
		return 0
	}
	s := append([]float64(nil), ms...)
	sort.Float64s(s)
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
