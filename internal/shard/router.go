// Package shard scales the networked serving tier from one worker to a
// fleet: a router hashes stream keys across N worker processes (each a
// cmd/serve -listen instance fronting one serve.Server), with per-shard
// admission control and load shedding under overload, and checkpoint-
// based migration that moves a live stream between shards bit-exactly —
// the exported snapshot restores on the target worker with its RNG,
// monitor, adapter and pending-round state intact, so the continued score
// trajectory is identical to one that never moved.
//
// The router is client-side: it owns the key→(shard,slot) table and the
// slot allocators, and every consumer of the fleet goes through one
// router (workers themselves stay key-agnostic, addressing only local
// slot indices). The package also ships the fault-tolerance layer — a
// health monitor that detects dead workers (see health.go) and a failover
// engine that rehomes their keys onto survivors from the router's cached
// per-key snapshots, replaying the frames scored since — and the
// open-loop load generator the latency claims are measured with (see
// loadgen.go).
package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"edgekg/internal/netserve"
)

// ErrOverload reports a submit shed by the router's admission control:
// the target shard already has MaxInflight frames in flight.
var ErrOverload = errors.New("shard: shard overloaded")

// ErrShardDown reports a submit routed to a shard the health monitor has
// marked down. Callers retry: once failover rehomes the key onto a
// survivor, the same Submit succeeds on the new route.
var ErrShardDown = errors.New("shard: shard down")

// Backend is one worker process as the router sees it. *netserve.Client
// wrapped by NetBackend is the production implementation; tests use
// fakes.
type Backend interface {
	// Slots is the worker's stream-slot capacity.
	Slots() int
	// Health probes the worker's liveness and shape.
	Health(ctx context.Context) (netserve.Health, error)
	// SubmitFrame scores one frame on a local slot.
	SubmitFrame(ctx context.Context, slot int, frame []float64) (netserve.FrameReply, error)
	// ExportRaw and RestoreRaw move one slot's serialized state.
	ExportRaw(ctx context.Context, slot int) ([]byte, error)
	RestoreRaw(ctx context.Context, slot int, state []byte) error
	// Release permanently drops a slot's stream state (the stream moved
	// elsewhere; the slot retires).
	Release(ctx context.Context, slot int) error
	// Die asks the worker to stop abruptly — the crash simulation failure
	// drills use.
	Die(ctx context.Context) error
}

// netBackend adapts a netserve.Client to the Backend interface.
type netBackend struct {
	*netserve.Client
	slots int
}

func (b netBackend) Slots() int { return b.slots }

// NetBackend wraps a worker client with its probed slot capacity.
func NetBackend(c *netserve.Client, slots int) Backend { return netBackend{Client: c, slots: slots} }

// Config sizes a Router.
type Config struct {
	// MaxInflight caps the frames concurrently in flight per shard;
	// submits beyond it are shed with ErrOverload instead of queued.
	// Defaults to 2× the shard's slot count.
	MaxInflight int
	// SnapshotEvery arms failover protection: the router keeps, per key,
	// the latest ExportRaw snapshot of its slot (taken before the key's
	// first frame, then refreshed every SnapshotEvery scored frames) plus
	// the frames scored since. When a shard dies, Failover restores each
	// of its keys from that snapshot on a survivor and replays the logged
	// frames, so the continued trajectory is bit-exact. 0 disables (no
	// snapshot traffic, no failover).
	//
	// The cadence is the freshness/cost dial: small values bound replay
	// work after a crash tightly but pay an export round trip (and its
	// raw barrier on the worker) more often.
	SnapshotEvery int
}

// Route locates one stream key on the fleet.
type Route struct {
	Shard, Slot int
}

// keyGuard is one key's failover protection: the newest state snapshot
// and the frames scored since it was taken.
type keyGuard struct {
	snapshot []byte
	replay   [][]float64
}

// Router hashes stream keys across shards and tracks slot assignments.
// Submit is safe for concurrent use across keys; frames of one key must
// be submitted sequentially (one camera, one ordered feed), and Migrate
// for a key must not race its submits.
type Router struct {
	backends []Backend
	cfg      Config

	mu       sync.Mutex
	routes   map[string]Route
	nextSlot []int
	guards   map[string]*keyGuard

	// migMu serializes migrations and failovers, so a reserved target
	// slot can be rolled back on failure without interleaving with
	// another migration's reservation.
	migMu sync.Mutex

	down     []atomic.Bool
	inflight []int64
	shed     atomic.Int64
}

// New builds a router over the given shard backends.
func New(backends []Backend, cfg Config) (*Router, error) {
	if len(backends) < 1 {
		return nil, fmt.Errorf("shard: need at least one backend")
	}
	return &Router{
		backends: backends,
		cfg:      cfg,
		routes:   make(map[string]Route),
		nextSlot: make([]int, len(backends)),
		guards:   make(map[string]*keyGuard),
		down:     make([]atomic.Bool, len(backends)),
		inflight: make([]int64, len(backends)),
	}, nil
}

// NumShards returns the fleet size.
func (r *Router) NumShards() int { return len(r.backends) }

// Backend exposes one shard's backend (operational tooling: stats and
// mem probes go straight to the worker).
func (r *Router) Backend(shard int) Backend { return r.backends[shard] }

// Shed returns how many submits the router's admission control dropped.
func (r *Router) Shed() int64 { return r.shed.Load() }

// SlotsInUse returns how many of shard's slots are allocated (including
// retired migrated-away slots — slot indices are monotonic).
func (r *Router) SlotsInUse(shard int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nextSlot[shard]
}

// MarkDown flags a shard as dead: submits routed to it fail fast with
// ErrShardDown instead of timing out against a corpse. The health monitor
// calls this at its failure threshold; Failover marks too.
func (r *Router) MarkDown(shard int) { r.down[shard].Store(true) }

// MarkUp clears a shard's down flag (a replacement worker came back on
// the same address).
func (r *Router) MarkUp(shard int) { r.down[shard].Store(false) }

// Down reports whether a shard is marked dead.
func (r *Router) Down(shard int) bool { return r.down[shard].Load() }

// hashShard is the key's home shard: FNV-1a over the key, mod fleet
// size — deterministic across processes and runs, which is what lets a
// re-run of the same scenario land every key on the same shard.
func (r *Router) hashShard(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(r.backends)))
}

// Route returns the key's current placement, allocating a slot on its
// hash-home shard at first sight. Allocation fails when the home shard is
// out of slots (slots retire monotonically; a migrated-away slot is not
// reused, because its stream state still occupies it on the worker).
func (r *Router) Route(key string) (Route, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rt, ok := r.routes[key]; ok {
		return rt, nil
	}
	rt, err := r.allocate(r.hashShard(key))
	if err != nil {
		return Route{}, fmt.Errorf("%w for key %q", err, key)
	}
	r.routes[key] = rt
	return rt, nil
}

// allocate reserves the next free slot on shard. Caller holds mu. Slots
// retire monotonically: a migrated-away slot is not reused (it is retired
// on the worker), but a reservation whose restore fails is rolled back —
// see Migrate — so a failed migration leaves capacity unchanged.
func (r *Router) allocate(shard int) (Route, error) {
	if r.nextSlot[shard] >= r.backends[shard].Slots() {
		return Route{}, fmt.Errorf("shard: shard %d out of stream slots (%d in use)", shard, r.nextSlot[shard])
	}
	rt := Route{Shard: shard, Slot: r.nextSlot[shard]}
	r.nextSlot[shard]++
	return rt, nil
}

// unreserve rolls back a just-reserved slot after a failed restore.
// Reservations under migMu cannot interleave, so the slot is the shard's
// newest unless a concurrent Route allocation slipped in between — in
// that rare race the slot retires instead (never reused; its state on the
// worker is indeterminate after a half-applied restore).
func (r *Router) unreserve(rt Route) {
	r.mu.Lock()
	if r.nextSlot[rt.Shard] == rt.Slot+1 {
		r.nextSlot[rt.Shard]--
	}
	r.mu.Unlock()
}

// Submit routes one frame to its key's shard, shedding with ErrOverload
// when the shard's in-flight bound is reached. netserve.ErrBusy from the
// worker (its per-slot gate) passes through — callers treat both as shed.
// A shard marked down fails fast with ErrShardDown; with failover armed
// (Config.SnapshotEvery) the caller retries and lands on the survivor
// once the key is rehomed.
func (r *Router) Submit(ctx context.Context, key string, frame []float64) (netserve.FrameReply, error) {
	rt, err := r.Route(key)
	if err != nil {
		return netserve.FrameReply{}, err
	}
	if r.down[rt.Shard].Load() {
		return netserve.FrameReply{}, fmt.Errorf("key %q shard %d: %w", key, rt.Shard, ErrShardDown)
	}
	if r.cfg.SnapshotEvery > 0 {
		// The initial snapshot must land before the key's first frame:
		// without it a crash before the first refresh would leave nothing
		// to rebuild the trajectory from.
		if err := r.ensureSnapshot(ctx, key, rt); err != nil {
			return netserve.FrameReply{}, err
		}
	}
	max := r.cfg.MaxInflight
	if max <= 0 {
		max = 2 * r.backends[rt.Shard].Slots()
	}
	if atomic.AddInt64(&r.inflight[rt.Shard], 1) > int64(max) {
		atomic.AddInt64(&r.inflight[rt.Shard], -1)
		r.shed.Add(1)
		return netserve.FrameReply{}, ErrOverload
	}
	rep, err := func() (netserve.FrameReply, error) {
		defer atomic.AddInt64(&r.inflight[rt.Shard], -1)
		return r.backends[rt.Shard].SubmitFrame(ctx, rt.Slot, frame)
	}()
	if err == nil && r.cfg.SnapshotEvery > 0 {
		r.recordScored(ctx, key, rt, frame)
	}
	return rep, err
}

// ensureSnapshot takes the key's initial state snapshot (before its first
// frame). The exported bytes restore onto any fresh slot with RNG and
// counters intact, which is what makes a failed-over key's trajectory
// independent of which slot it lands on.
func (r *Router) ensureSnapshot(ctx context.Context, key string, rt Route) error {
	r.mu.Lock()
	g := r.guards[key]
	if g == nil {
		g = &keyGuard{}
		r.guards[key] = g
	}
	have := g.snapshot != nil
	r.mu.Unlock()
	if have {
		return nil
	}
	state, err := r.backends[rt.Shard].ExportRaw(ctx, rt.Slot)
	if err != nil {
		return fmt.Errorf("shard: key %q initial snapshot: %w", key, err)
	}
	r.mu.Lock()
	if g.snapshot == nil {
		g.snapshot = state
	}
	r.mu.Unlock()
	return nil
}

// recordScored logs one successfully scored frame into the key's replay
// buffer and refreshes the snapshot at the configured cadence. Only
// scored frames enter the log: a frame whose submit failed is the
// caller's to retry, and replaying it here too would double-score it.
func (r *Router) recordScored(ctx context.Context, key string, rt Route, frame []float64) {
	r.mu.Lock()
	g := r.guards[key]
	g.replay = append(g.replay, append([]float64(nil), frame...))
	due := len(g.replay) >= r.cfg.SnapshotEvery
	r.mu.Unlock()
	if !due {
		return
	}
	// A raw barrier on the worker: the export does not join a pending
	// adaptation round, so the cadence does not perturb the trajectory.
	state, err := r.backends[rt.Shard].ExportRaw(ctx, rt.Slot)
	if err != nil {
		// Keep the older snapshot and the longer replay log; the next
		// scored frame retries the refresh.
		return
	}
	r.mu.Lock()
	g.snapshot, g.replay = state, nil
	r.mu.Unlock()
}

// Migrate moves a key's stream to a fresh slot on another shard via the
// checkpoint path: export on the source worker (a raw barrier — an
// in-flight adaptation round keeps its swap schedule), restore on the
// target, repoint the route, then release the source slot's now-duplicate
// state so the source worker stops charging its resident bytes. The
// caller must quiesce the key first (no frame of the key in flight);
// other keys are unaffected throughout. The target slot is
// reserve-then-commit: on any failure before the repoint the reservation
// is rolled back — the route is unchanged, the source slot still serves,
// and the target shard's capacity is what it was.
func (r *Router) Migrate(ctx context.Context, key string, toShard int) (Route, error) {
	if toShard < 0 || toShard >= len(r.backends) {
		return Route{}, fmt.Errorf("shard: no shard %d", toShard)
	}
	r.migMu.Lock()
	defer r.migMu.Unlock()
	r.mu.Lock()
	from, ok := r.routes[key]
	r.mu.Unlock()
	if !ok {
		return Route{}, fmt.Errorf("shard: unknown key %q", key)
	}
	if from.Shard == toShard {
		return from, nil
	}
	state, err := r.backends[from.Shard].ExportRaw(ctx, from.Slot)
	if err != nil {
		return Route{}, fmt.Errorf("shard: migrate %q: export: %w", key, err)
	}
	r.mu.Lock()
	to, err := r.allocate(toShard)
	r.mu.Unlock()
	if err != nil {
		return Route{}, fmt.Errorf("shard: migrate %q: %w", key, err)
	}
	if err := r.backends[toShard].RestoreRaw(ctx, to.Slot, state); err != nil {
		r.unreserve(to)
		return Route{}, fmt.Errorf("shard: migrate %q: restore: %w", key, err)
	}
	r.mu.Lock()
	r.routes[key] = to
	if g := r.guards[key]; g != nil {
		// The export is a fresh frame-boundary snapshot of the moved
		// state: adopt it and clear the replay log.
		g.snapshot, g.replay = state, nil
	}
	r.mu.Unlock()
	// The moved stream's source copy is now dead weight on the source
	// worker (ledger bytes, spill eligibility). Drop it. Best-effort: the
	// migration itself is complete, and a failed release only means the
	// source worker keeps charging memory for a slot that will never
	// serve again.
	if err := r.backends[from.Shard].Release(ctx, from.Slot); err != nil && !r.down[from.Shard].Load() {
		return to, fmt.Errorf("shard: migrate %q: moved, but releasing source slot failed: %w", key, err)
	}
	return to, nil
}

// FailoverReport is one failover's outcome.
type FailoverReport struct {
	// Shard is the dead shard.
	Shard int
	// Keys are the keys that were homed on it, in deterministic order.
	Keys []string
	// Rehomed maps each recovered key to its new placement.
	Rehomed map[string]Route
	// FramesReplayed counts frames re-scored from the replay logs to roll
	// the restored snapshots forward to the crash point.
	FramesReplayed int
	// Detection is how long the health monitor took from the first failed
	// probe to marking the shard down (filled by the monitor).
	Detection time.Duration
	// Recovery is the failover engine's own time: restores plus replays.
	Recovery time.Duration
	// Err carries the failure text when some keys could not be recovered.
	Err string `json:",omitempty"`
}

// Failover rehomes every key of a dead shard onto surviving shards from
// the router's cached snapshots (Config.SnapshotEvery must be on),
// replaying the frames scored since each snapshot so the continued score
// trajectories are bit-exact with an uninterrupted run. Keys land on the
// survivor with the most free slots (ties to the lowest index). Routes
// repoint only after a key's restore and replay both succeed, so a
// caller retrying ErrShardDown cannot race a half-recovered stream. Keys
// that cannot be recovered keep their dead route and are reported in the
// joined error.
func (r *Router) Failover(ctx context.Context, dead int) (*FailoverReport, error) {
	if dead < 0 || dead >= len(r.backends) {
		return nil, fmt.Errorf("shard: no shard %d", dead)
	}
	if r.cfg.SnapshotEvery <= 0 {
		return nil, fmt.Errorf("shard: failover is not armed (Config.SnapshotEvery is 0)")
	}
	r.MarkDown(dead)
	r.migMu.Lock()
	defer r.migMu.Unlock()
	start := time.Now()
	r.mu.Lock()
	var keys []string
	for k, rt := range r.routes {
		if rt.Shard == dead {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	r.mu.Unlock()

	rep := &FailoverReport{Shard: dead, Keys: keys, Rehomed: make(map[string]Route, len(keys))}
	var errs []error
	for _, key := range keys {
		r.mu.Lock()
		g := r.guards[key]
		var snap []byte
		var replay [][]float64
		if g != nil {
			snap = g.snapshot
			replay = g.replay
		}
		r.mu.Unlock()
		if snap == nil {
			errs = append(errs, fmt.Errorf("shard: failover: key %q has no cached snapshot", key))
			continue
		}
		r.mu.Lock()
		target, bestFree := -1, 0
		for s := range r.backends {
			if s == dead || r.down[s].Load() {
				continue
			}
			if free := r.backends[s].Slots() - r.nextSlot[s]; free > bestFree {
				bestFree, target = free, s
			}
		}
		var to Route
		var err error
		if target < 0 {
			err = fmt.Errorf("shard: failover: no surviving shard has a free slot for key %q", key)
		} else {
			to, err = r.allocate(target)
		}
		r.mu.Unlock()
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if err := r.backends[to.Shard].RestoreRaw(ctx, to.Slot, snap); err != nil {
			r.unreserve(to)
			errs = append(errs, fmt.Errorf("shard: failover: restore key %q: %w", key, err))
			continue
		}
		replayOK := true
		for i, f := range replay {
			// Replay scores are discarded: the original submits already
			// delivered them to the driver. This only rolls the restored
			// state forward to the exact frame the dead worker had reached.
			if _, err := r.backends[to.Shard].SubmitFrame(ctx, to.Slot, f); err != nil {
				errs = append(errs, fmt.Errorf("shard: failover: replay key %q frame %d of %d: %w", key, i+1, len(replay), err))
				replayOK = false
				break
			}
			rep.FramesReplayed++
		}
		if !replayOK {
			continue
		}
		r.mu.Lock()
		r.routes[key] = to
		r.mu.Unlock()
		rep.Rehomed[key] = to
	}
	rep.Recovery = time.Since(start)
	return rep, errors.Join(errs...)
}
