// Package shard scales the networked serving tier from one worker to a
// fleet: a router hashes stream keys across N worker processes (each a
// cmd/serve -listen instance fronting one serve.Server), with per-shard
// admission control and load shedding under overload, and checkpoint-
// based migration that moves a live stream between shards bit-exactly —
// the exported snapshot restores on the target worker with its RNG,
// monitor, adapter and pending-round state intact, so the continued score
// trajectory is identical to one that never moved.
//
// The router is client-side: it owns the key→(shard,slot) table and the
// slot allocators, and every consumer of the fleet goes through one
// router (workers themselves stay key-agnostic, addressing only local
// slot indices). The package also ships the open-loop load generator the
// latency claims are measured with (see loadgen.go).
package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"edgekg/internal/netserve"
)

// ErrOverload reports a submit shed by the router's admission control:
// the target shard already has MaxInflight frames in flight.
var ErrOverload = errors.New("shard: shard overloaded")

// Backend is one worker process as the router sees it. *netserve.Client
// wrapped by NetBackend is the production implementation; tests use
// fakes.
type Backend interface {
	// Slots is the worker's stream-slot capacity.
	Slots() int
	// SubmitFrame scores one frame on a local slot.
	SubmitFrame(ctx context.Context, slot int, frame []float64) (netserve.FrameReply, error)
	// ExportRaw and RestoreRaw move one slot's serialized state.
	ExportRaw(ctx context.Context, slot int) ([]byte, error)
	RestoreRaw(ctx context.Context, slot int, state []byte) error
}

// netBackend adapts a netserve.Client to the Backend interface.
type netBackend struct {
	*netserve.Client
	slots int
}

func (b netBackend) Slots() int { return b.slots }

// NetBackend wraps a worker client with its probed slot capacity.
func NetBackend(c *netserve.Client, slots int) Backend { return netBackend{Client: c, slots: slots} }

// Config sizes a Router.
type Config struct {
	// MaxInflight caps the frames concurrently in flight per shard;
	// submits beyond it are shed with ErrOverload instead of queued.
	// Defaults to 2× the shard's slot count.
	MaxInflight int
}

// Route locates one stream key on the fleet.
type Route struct {
	Shard, Slot int
}

// Router hashes stream keys across shards and tracks slot assignments.
// Submit is safe for concurrent use across keys; frames of one key must
// be submitted sequentially (one camera, one ordered feed), and Migrate
// for a key must not race its submits.
type Router struct {
	backends []Backend
	cfg      Config

	mu       sync.Mutex
	routes   map[string]Route
	nextSlot []int

	inflight []int64
	shed     atomic.Int64
}

// New builds a router over the given shard backends.
func New(backends []Backend, cfg Config) (*Router, error) {
	if len(backends) < 1 {
		return nil, fmt.Errorf("shard: need at least one backend")
	}
	return &Router{
		backends: backends,
		cfg:      cfg,
		routes:   make(map[string]Route),
		nextSlot: make([]int, len(backends)),
		inflight: make([]int64, len(backends)),
	}, nil
}

// NumShards returns the fleet size.
func (r *Router) NumShards() int { return len(r.backends) }

// Backend exposes one shard's backend (operational tooling: stats and
// mem probes go straight to the worker).
func (r *Router) Backend(shard int) Backend { return r.backends[shard] }

// Shed returns how many submits the router's admission control dropped.
func (r *Router) Shed() int64 { return r.shed.Load() }

// hashShard is the key's home shard: FNV-1a over the key, mod fleet
// size — deterministic across processes and runs, which is what lets a
// re-run of the same scenario land every key on the same shard.
func (r *Router) hashShard(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(r.backends)))
}

// Route returns the key's current placement, allocating a slot on its
// hash-home shard at first sight. Allocation fails when the home shard is
// out of slots (slots retire monotonically; a migrated-away slot is not
// reused, because its stream state still occupies it on the worker).
func (r *Router) Route(key string) (Route, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rt, ok := r.routes[key]; ok {
		return rt, nil
	}
	rt, err := r.allocate(r.hashShard(key))
	if err != nil {
		return Route{}, fmt.Errorf("%w for key %q", err, key)
	}
	r.routes[key] = rt
	return rt, nil
}

// allocate reserves the next free slot on shard. Caller holds mu. Slots
// retire monotonically: a migrated-away slot is not reused (its stream
// state still occupies it on the worker), and a slot reserved for a
// migration that then fails is dropped rather than recycled.
func (r *Router) allocate(shard int) (Route, error) {
	if r.nextSlot[shard] >= r.backends[shard].Slots() {
		return Route{}, fmt.Errorf("shard: shard %d out of stream slots (%d in use)", shard, r.nextSlot[shard])
	}
	rt := Route{Shard: shard, Slot: r.nextSlot[shard]}
	r.nextSlot[shard]++
	return rt, nil
}

// Submit routes one frame to its key's shard, shedding with ErrOverload
// when the shard's in-flight bound is reached. netserve.ErrBusy from the
// worker (its per-slot gate) passes through — callers treat both as shed.
func (r *Router) Submit(ctx context.Context, key string, frame []float64) (netserve.FrameReply, error) {
	rt, err := r.Route(key)
	if err != nil {
		return netserve.FrameReply{}, err
	}
	max := r.cfg.MaxInflight
	if max <= 0 {
		max = 2 * r.backends[rt.Shard].Slots()
	}
	if atomic.AddInt64(&r.inflight[rt.Shard], 1) > int64(max) {
		atomic.AddInt64(&r.inflight[rt.Shard], -1)
		r.shed.Add(1)
		return netserve.FrameReply{}, ErrOverload
	}
	defer atomic.AddInt64(&r.inflight[rt.Shard], -1)
	return r.backends[rt.Shard].SubmitFrame(ctx, rt.Slot, frame)
}

// Migrate moves a key's stream to a fresh slot on another shard via the
// checkpoint path: export on the source worker (a raw barrier — an
// in-flight adaptation round keeps its swap schedule), restore on the
// target, repoint the route. The caller must quiesce the key first (no
// frame of the key in flight); other keys are unaffected throughout. On
// error the route is unchanged and the source slot still serves.
func (r *Router) Migrate(ctx context.Context, key string, toShard int) (Route, error) {
	if toShard < 0 || toShard >= len(r.backends) {
		return Route{}, fmt.Errorf("shard: no shard %d", toShard)
	}
	r.mu.Lock()
	from, ok := r.routes[key]
	r.mu.Unlock()
	if !ok {
		return Route{}, fmt.Errorf("shard: unknown key %q", key)
	}
	if from.Shard == toShard {
		return from, nil
	}
	state, err := r.backends[from.Shard].ExportRaw(ctx, from.Slot)
	if err != nil {
		return Route{}, fmt.Errorf("shard: migrate %q: export: %w", key, err)
	}
	r.mu.Lock()
	to, err := r.allocate(toShard)
	r.mu.Unlock()
	if err != nil {
		return Route{}, fmt.Errorf("shard: migrate %q: %w", key, err)
	}
	if err := r.backends[toShard].RestoreRaw(ctx, to.Slot, state); err != nil {
		return Route{}, fmt.Errorf("shard: migrate %q: restore: %w", key, err)
	}
	r.mu.Lock()
	r.routes[key] = to
	r.mu.Unlock()
	return to, nil
}
