package shard

import (
	"context"
	"sync"
	"time"
)

// HealthConfig tunes worker failure detection.
type HealthConfig struct {
	// Interval between liveness probes per shard. Default 250ms.
	Interval time.Duration
	// Timeout bounds one probe. Default 1s. Keep it under Interval×
	// Threshold or a single hung worker stretches detection latency.
	Timeout time.Duration
	// Threshold is how many consecutive failed probes declare a shard
	// dead. Default 3. Higher values ride out transient stalls (a worker
	// paused in a long adaptation round still answers /healthz — probes
	// are served off the request path — so stalls here mean real trouble);
	// lower values detect faster but may fail over a live worker.
	Threshold int
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = time.Second
	}
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	return c
}

// HealthMonitor probes every shard's Health endpoint on a fixed cadence
// and, when a shard misses Threshold consecutive probes, marks it down
// and runs the router's failover engine to rehome its keys onto
// survivors. One goroutine per shard; a shard declared dead stays dead
// (no flap-back — a replacement worker is an operator decision, see
// Router.MarkUp).
type HealthMonitor struct {
	r      *Router
	cfg    HealthConfig
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	reports []*FailoverReport
}

// NewHealthMonitor builds a monitor over the router's fleet. Call Start
// to begin probing and Stop to halt.
func NewHealthMonitor(r *Router, cfg HealthConfig) *HealthMonitor {
	ctx, cancel := context.WithCancel(context.Background())
	return &HealthMonitor{r: r, cfg: cfg.withDefaults(), ctx: ctx, cancel: cancel}
}

// Start launches one probe loop per shard.
func (m *HealthMonitor) Start() {
	for s := 0; s < m.r.NumShards(); s++ {
		m.wg.Add(1)
		go m.watch(s)
	}
}

// Stop halts all probe loops and waits for them to exit. A failover in
// progress is cancelled (its partial outcome is still reported).
func (m *HealthMonitor) Stop() {
	m.cancel()
	m.wg.Wait()
}

// Reports returns the failovers the monitor has run, in detection order.
func (m *HealthMonitor) Reports() []*FailoverReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*FailoverReport, len(m.reports))
	copy(out, m.reports)
	return out
}

func (m *HealthMonitor) watch(shard int) {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.Interval)
	defer ticker.Stop()
	fails := 0
	var firstFail time.Time
	for {
		select {
		case <-m.ctx.Done():
			return
		case <-ticker.C:
		}
		pctx, cancel := context.WithTimeout(m.ctx, m.cfg.Timeout)
		h, err := m.r.Backend(shard).Health(pctx)
		cancel()
		if err == nil && h.OK {
			fails = 0
			continue
		}
		if fails == 0 {
			firstFail = time.Now()
		}
		fails++
		if fails < m.cfg.Threshold {
			continue
		}
		detection := time.Since(firstFail)
		m.r.MarkDown(shard)
		rep, ferr := m.r.Failover(m.ctx, shard)
		if rep == nil {
			rep = &FailoverReport{Shard: shard}
		}
		rep.Detection = detection
		if ferr != nil {
			rep.Err = ferr.Error()
		}
		m.mu.Lock()
		m.reports = append(m.reports, rep)
		m.mu.Unlock()
		// The shard is dead and its keys are rehomed; nothing left to
		// probe.
		return
	}
}
