package shard_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"edgekg/internal/netserve"
	"edgekg/internal/serve"
	"edgekg/internal/shard"
)

// faultFleet stands up nshards workers wired for crash drills: each
// worker's handler is bridged to its httptest server so a /v1/die request
// severs every connection abruptly, exactly as the production embedder
// (edgekg.NetListen) crashes on KillRequested.
func faultFleet(t *testing.T, seed int64, nshards, slots int, cfg shard.Config) *shard.Router {
	t.Helper()
	backends := make([]shard.Backend, nshards)
	for i := 0; i < nshards; i++ {
		backbone, _ := buildBackbone(t, seed)
		scfg := serve.DefaultConfig()
		stream := serve.DefaultStreamConfig()
		stream.MonitorN = 8
		stream.MonitorLag = 4
		stream.AdaptEveryFrames = 8
		stream.AdaptLagFrames = 2
		stream.Adapt.Patience = 1
		scfg.Stream = stream
		scfg.BaseSeed = 100
		srv, err := serve.NewServer(backbone, slots, scfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Shutdown)
		h, err := netserve.NewHandler(srv, netserve.Options{FrameSize: pixDim})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		go func() {
			<-h.KillRequested()
			ts.CloseClientConnections()
			ts.Close()
		}()
		backends[i] = shard.NetBackend(netserve.NewClient(ts.URL), slots)
	}
	r, err := shard.New(backends, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRouterFailoverBitExact is the fault-tolerance acceptance test: 8
// concurrent camera streams over a 2-shard fleet, one worker killed
// abruptly mid-run — with adaptation rounds pending (round triggered at
// frame 16, swap still two frames out at the kill point) — the health
// monitor detects the death, failover rehomes the dead shard's keys onto
// the survivor from cached snapshots and replays the frames scored since,
// the drivers retry through the outage, and every continued trajectory is
// bit-identical to an uninterrupted fleet's.
func TestRouterFailoverBitExact(t *testing.T) {
	const seed, nkeys, frames, killAt = 11, 8, 24, 17
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = "cam-" + string(rune('a'+i))
	}
	_, gen := buildBackbone(t, seed)
	fs := synthFrames(t, gen, keys, frames)
	sc := shard.Scenario{
		Keys:   keys,
		Frames: frames,
		Frame:  func(key string, seq int) []float64 { return fs[key][seq] },
	}
	ctx := context.Background()

	// Baseline fleet: nothing dies. SnapshotEvery is deliberately off —
	// the snapshot cache's raw barriers must not be needed for the
	// baseline to match, proving the cache itself is trajectory-neutral.
	base := newFleet(t, seed, 2, nkeys+1)
	baseRep, err := shard.Run(ctx, base, sc)
	if err != nil {
		t.Fatal(err)
	}
	if baseRep.OK != nkeys*frames || baseRep.Failed != 0 {
		t.Fatalf("baseline run: %+v", baseRep)
	}

	// Fault fleet: same seed, failover armed, one shard killed before
	// cam-a's frame 17.
	faulty := faultFleet(t, seed, 2, nkeys+1, shard.Config{SnapshotEvery: 8})
	rt0, err := faulty.Route(keys[0])
	if err != nil {
		t.Fatal(err)
	}
	dead := rt0.Shard
	survivor := 1 - dead
	monitor := shard.NewHealthMonitor(faulty, shard.HealthConfig{
		Interval:  20 * time.Millisecond,
		Timeout:   500 * time.Millisecond,
		Threshold: 2,
	})
	monitor.Start()
	defer monitor.Stop()

	// Capture the survivor's pre-failover slot usage for the leak check.
	// Routes are pre-allocated by Run in key order; pre-route here to read
	// a stable figure.
	for _, k := range keys {
		if _, err := faulty.Route(k); err != nil {
			t.Fatal(err)
		}
	}
	survBefore := faulty.SlotsInUse(survivor)
	var deadKeys []string
	for _, k := range keys {
		if rt, _ := faulty.Route(k); rt.Shard == dead {
			deadKeys = append(deadKeys, k)
		}
	}
	if len(deadKeys) == 0 {
		t.Fatal("no keys on the to-be-killed shard; the drill is vacuous")
	}

	ksc := sc
	ksc.Kill = &shard.Kill{Shard: dead, At: killAt}
	killRep, err := shard.Run(ctx, faulty, ksc)
	if err != nil {
		t.Fatal(err)
	}
	if killRep.OK != nkeys*frames {
		t.Fatalf("killed run scored %d of %d frames: %+v", killRep.OK, nkeys*frames, killRep)
	}
	if killRep.Retried == 0 {
		t.Fatal("no submits retried through the outage — was the worker killed at all?")
	}

	// The detection/failover report.
	reports := monitor.Reports()
	if len(reports) != 1 {
		t.Fatalf("monitor ran %d failovers, want 1: %+v", len(reports), reports)
	}
	fo := reports[0]
	if fo.Shard != dead {
		t.Fatalf("failover report for shard %d, want %d", fo.Shard, dead)
	}
	if fo.Err != "" {
		t.Fatalf("failover reported errors: %s", fo.Err)
	}
	if fo.Detection <= 0 || fo.Recovery <= 0 {
		t.Fatalf("degenerate failover timings: %+v", fo)
	}
	if fo.FramesReplayed == 0 {
		t.Fatal("failover replayed nothing; the kill point should sit between snapshots")
	}
	if len(fo.Rehomed) != len(deadKeys) {
		t.Fatalf("rehomed %d keys, want %d (%v)", len(fo.Rehomed), len(deadKeys), fo.Rehomed)
	}

	// Every dead-shard key now lives on the survivor; no slot leaked: the
	// survivor gained exactly one slot per rehomed key.
	for _, k := range deadKeys {
		rt, err := faulty.Route(k)
		if err != nil {
			t.Fatal(err)
		}
		if rt.Shard != survivor {
			t.Fatalf("key %q on shard %d after failover, want %d", k, rt.Shard, survivor)
		}
	}
	if got, want := faulty.SlotsInUse(survivor), survBefore+len(deadKeys); got != want {
		t.Fatalf("survivor has %d slots in use, want %d (slot leak)", got, want)
	}
	if !faulty.Down(dead) {
		t.Fatal("dead shard not marked down")
	}

	// The acceptance bar: every trajectory bit-exact against the
	// uninterrupted baseline — including the keys that crossed the crash.
	for _, key := range keys {
		a, b := baseRep.Traces[key], killRep.Traces[key]
		if len(a) != frames || len(b) != frames {
			t.Fatalf("key %q traces %d/%d, want %d", key, len(a), len(b), frames)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("key %q frame %d: failed-over score %v != baseline %v", key, i, b[i], a[i])
			}
		}
	}
}

// TestFailoverRequiresArming pins the guard: without SnapshotEvery there
// is no cache to recover from, and Failover must refuse rather than
// silently lose streams.
func TestFailoverRequiresArming(t *testing.T) {
	r := newFleet(t, 3, 2, 2)
	if _, err := r.Failover(context.Background(), 0); err == nil {
		t.Fatal("Failover on an unarmed router: want error")
	}
}
