// Package metrics implements the evaluation machinery of Sec. IV: exact
// ROC-AUC with tie handling (the paper's headline metric), ROC and
// precision-recall curves, confusion counts, and streaming statistics
// (Welford mean/variance, histograms) used by the score-distribution
// monitor.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// AUC returns the area under the ROC curve for binary labels (true =
// positive/anomalous) and real-valued scores, computed exactly via the
// Mann-Whitney U statistic with midrank tie handling. It returns an error
// when either class is absent.
func AUC(scores []float64, labels []bool) (float64, error) {
	if len(scores) != len(labels) {
		return 0, fmt.Errorf("metrics: %d scores vs %d labels", len(scores), len(labels))
	}
	var pos, neg int
	for _, l := range labels {
		if l {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0, fmt.Errorf("metrics: AUC undefined with %d positives and %d negatives", pos, neg)
	}
	type pair struct {
		s   float64
		pos bool
	}
	ps := make([]pair, len(scores))
	for i, s := range scores {
		if math.IsNaN(s) {
			return 0, fmt.Errorf("metrics: NaN score at index %d", i)
		}
		ps[i] = pair{s, labels[i]}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].s < ps[j].s })
	// Midranks over tie groups.
	rankSumPos := 0.0
	i := 0
	for i < len(ps) {
		j := i
		for j < len(ps) && ps[j].s == ps[i].s {
			j++
		}
		midrank := float64(i+j+1) / 2 // average of ranks i+1..j
		for k := i; k < j; k++ {
			if ps[k].pos {
				rankSumPos += midrank
			}
		}
		i = j
	}
	u := rankSumPos - float64(pos)*float64(pos+1)/2
	return u / (float64(pos) * float64(neg)), nil
}

// ROCPoint is one operating point of the ROC curve.
type ROCPoint struct {
	Threshold float64
	TPR, FPR  float64
}

// ROC returns the ROC curve at every distinct threshold, ordered from the
// (0,0) to the (1,1) corner.
func ROC(scores []float64, labels []bool) []ROCPoint {
	type pair struct {
		s   float64
		pos bool
	}
	ps := make([]pair, len(scores))
	var pos, neg float64
	for i := range scores {
		ps[i] = pair{scores[i], labels[i]}
		if labels[i] {
			pos++
		} else {
			neg++
		}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].s > ps[j].s })
	var out []ROCPoint
	tp, fp := 0.0, 0.0
	i := 0
	out = append(out, ROCPoint{Threshold: math.Inf(1)})
	for i < len(ps) {
		j := i
		for j < len(ps) && ps[j].s == ps[i].s {
			if ps[j].pos {
				tp++
			} else {
				fp++
			}
			j++
		}
		pt := ROCPoint{Threshold: ps[i].s}
		if pos > 0 {
			pt.TPR = tp / pos
		}
		if neg > 0 {
			pt.FPR = fp / neg
		}
		out = append(out, pt)
		i = j
	}
	return out
}

// PRPoint is one operating point of the precision-recall curve.
type PRPoint struct {
	Threshold         float64
	Precision, Recall float64
}

// PR returns the precision-recall curve at every distinct threshold,
// ordered by decreasing threshold.
func PR(scores []float64, labels []bool) []PRPoint {
	type pair struct {
		s   float64
		pos bool
	}
	ps := make([]pair, len(scores))
	var pos float64
	for i := range scores {
		ps[i] = pair{scores[i], labels[i]}
		if labels[i] {
			pos++
		}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].s > ps[j].s })
	var out []PRPoint
	tp, predPos := 0.0, 0.0
	i := 0
	for i < len(ps) {
		j := i
		for j < len(ps) && ps[j].s == ps[i].s {
			if ps[j].pos {
				tp++
			}
			predPos++
			j++
		}
		pt := PRPoint{Threshold: ps[i].s}
		if predPos > 0 {
			pt.Precision = tp / predPos
		}
		if pos > 0 {
			pt.Recall = tp / pos
		}
		out = append(out, pt)
		i = j
	}
	return out
}

// Confusion counts binary outcomes at a score threshold (score ≥ threshold
// predicts positive).
type Confusion struct {
	TP, FP, TN, FN int
}

// Confuse computes the confusion counts.
func Confuse(scores []float64, labels []bool, threshold float64) Confusion {
	var c Confusion
	for i, s := range scores {
		pred := s >= threshold
		switch {
		case pred && labels[i]:
			c.TP++
		case pred && !labels[i]:
			c.FP++
		case !pred && labels[i]:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// Accuracy returns (TP+TN)/total, or 0 for empty counts.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// F1 returns the harmonic mean of precision and recall, or 0 when
// undefined.
func (c Confusion) F1() float64 {
	denom := 2*c.TP + c.FP + c.FN
	if denom == 0 {
		return 0
	}
	return 2 * float64(c.TP) / float64(denom)
}

// Welford accumulates streaming mean and variance in one pass.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the observation count.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 before any observation).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the running population variance.
func (w *Welford) Var() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std returns the running population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Histogram counts observations into equal-width bins over [lo, hi);
// values outside clamp to the boundary bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram returns a histogram with the given bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 || hi <= lo {
		panic(fmt.Sprintf("metrics: bad histogram [%v,%v) with %d bins", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add counts one observation.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	idx := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Quantile returns the approximate q-quantile (bin lower edge), q∈[0,1].
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return h.Lo
	}
	target := q * float64(h.total)
	cum := 0.0
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		cum += float64(c)
		if cum >= target {
			return h.Lo + float64(i)*width
		}
	}
	return h.Hi
}
