package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAUCPerfectSeparation(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 1 {
		t.Errorf("AUC = %v, want 1", auc)
	}
	// Inverted scores give 0.
	inv := []float64{0.1, 0.2, 0.8, 0.9}
	auc, _ = AUC(inv, labels)
	if auc != 0 {
		t.Errorf("inverted AUC = %v, want 0", auc)
	}
}

func TestAUCKnownValue(t *testing.T) {
	// scores: pos {0.8, 0.4}, neg {0.6, 0.2}: pairs (0.8>0.6), (0.8>0.2),
	// (0.4<0.6), (0.4>0.2) → 3/4.
	auc, err := AUC([]float64{0.8, 0.4, 0.6, 0.2}, []bool{true, true, false, false})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.75) > 1e-12 {
		t.Errorf("AUC = %v, want 0.75", auc)
	}
}

func TestAUCTies(t *testing.T) {
	// All scores equal: AUC must be exactly 0.5 under midrank handling.
	auc, err := AUC([]float64{0.5, 0.5, 0.5, 0.5}, []bool{true, false, true, false})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 1e-12 {
		t.Errorf("tied AUC = %v, want 0.5", auc)
	}
}

func TestAUCErrors(t *testing.T) {
	if _, err := AUC([]float64{1, 2}, []bool{true}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := AUC([]float64{1, 2}, []bool{true, true}); err == nil {
		t.Error("single-class labels accepted")
	}
	if _, err := AUC([]float64{math.NaN(), 2}, []bool{true, false}); err == nil {
		t.Error("NaN score accepted")
	}
}

// Property: AUC is invariant under strictly monotone transforms of scores.
func TestAUCMonotoneInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(20)
		scores := make([]float64, n)
		labels := make([]bool, n)
		pos := 0
		for i := range scores {
			scores[i] = rng.NormFloat64()
			labels[i] = rng.Float64() < 0.5
			if labels[i] {
				pos++
			}
		}
		if pos == 0 || pos == n {
			return true // AUC undefined; skip
		}
		a1, err1 := AUC(scores, labels)
		warped := make([]float64, n)
		for i, s := range scores {
			warped[i] = math.Exp(2*s) + 1 // strictly increasing
		}
		a2, err2 := AUC(warped, labels)
		return err1 == nil && err2 == nil && math.Abs(a1-a2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: random scores give AUC near 0.5 in expectation.
func TestAUCRandomScoresNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sum := 0.0
	const runs = 50
	for r := 0; r < runs; r++ {
		n := 200
		scores := make([]float64, n)
		labels := make([]bool, n)
		for i := range scores {
			scores[i] = rng.Float64()
			labels[i] = i%2 == 0
		}
		a, err := AUC(scores, labels)
		if err != nil {
			t.Fatal(err)
		}
		sum += a
	}
	if avg := sum / runs; math.Abs(avg-0.5) > 0.03 {
		t.Errorf("mean random AUC = %v, want ≈0.5", avg)
	}
}

func TestROCEndpointsAndMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 50
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Float64() < 0.4
	}
	roc := ROC(scores, labels)
	first, last := roc[0], roc[len(roc)-1]
	if first.TPR != 0 || first.FPR != 0 {
		t.Errorf("ROC must start at origin, got %+v", first)
	}
	if last.TPR != 1 || last.FPR != 1 {
		t.Errorf("ROC must end at (1,1), got %+v", last)
	}
	for i := 1; i < len(roc); i++ {
		if roc[i].TPR < roc[i-1].TPR || roc[i].FPR < roc[i-1].FPR {
			t.Fatal("ROC not monotone")
		}
	}
}

func TestPRCurve(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.7, 0.6}
	labels := []bool{true, false, true, false}
	pr := PR(scores, labels)
	if len(pr) != 4 {
		t.Fatalf("points = %d", len(pr))
	}
	// At threshold 0.9: 1 prediction, 1 TP → precision 1, recall 0.5.
	if pr[0].Precision != 1 || pr[0].Recall != 0.5 {
		t.Errorf("first point %+v", pr[0])
	}
	// At the last threshold everything is predicted: recall 1.
	if pr[3].Recall != 1 {
		t.Errorf("last recall %v", pr[3].Recall)
	}
}

func TestConfusionAndDerived(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.3, 0.1}
	labels := []bool{true, false, true, false}
	c := Confuse(scores, labels, 0.5)
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Errorf("confusion %+v", c)
	}
	if c.Accuracy() != 0.5 {
		t.Errorf("accuracy %v", c.Accuracy())
	}
	if c.F1() != 0.5 {
		t.Errorf("F1 %v", c.F1())
	}
	var empty Confusion
	if empty.Accuracy() != 0 || empty.F1() != 0 {
		t.Error("empty confusion must yield 0 metrics")
	}
}

func TestWelfordAgainstDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var w Welford
	var xs []float64
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 7
		xs = append(xs, x)
		w.Add(x)
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	variance := 0.0
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs))
	if math.Abs(w.Mean()-mean) > 1e-9 {
		t.Errorf("mean %v vs %v", w.Mean(), mean)
	}
	if math.Abs(w.Var()-variance) > 1e-9 {
		t.Errorf("var %v vs %v", w.Var(), variance)
	}
	if w.N() != 1000 {
		t.Errorf("N = %d", w.N())
	}
	if math.Abs(w.Std()-math.Sqrt(variance)) > 1e-9 {
		t.Error("std mismatch")
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.N() != 0 {
		t.Error("empty Welford must be zeros")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) / 100)
	}
	if h.Total() != 100 {
		t.Errorf("total %d", h.Total())
	}
	for i, c := range h.Counts {
		if c != 10 {
			t.Errorf("bin %d count %d, want 10", i, c)
		}
	}
	// Out-of-range clamps.
	h.Add(-5)
	h.Add(99)
	if h.Counts[0] != 11 || h.Counts[9] != 11 {
		t.Error("clamping broken")
	}
	if q := h.Quantile(0.5); q < 0.3 || q > 0.6 {
		t.Errorf("median %v", q)
	}
	if h.Quantile(0) > h.Quantile(1) {
		t.Error("quantiles not ordered")
	}
}

func TestHistogramValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad histogram accepted")
		}
	}()
	NewHistogram(1, 0, 5)
}
