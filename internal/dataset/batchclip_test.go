package dataset

import (
	"math/rand"
	"testing"

	"edgekg/internal/concept"
	"edgekg/internal/tensor"
)

// TestNextClipsGeometryAndDeterminism checks the microbatch sampler:
// every clip has the single-clip geometry, the whole batch is a pure
// function of the master RNG state, and clip i equals a single-clip call
// made on a stream derived from the i-th seed draw — the property that
// lets the sequential-accumulation reference consume the same microbatch
// as the data-parallel step.
func TestNextClipsGeometryAndDeterminism(t *testing.T) {
	gen := testGen(t)
	rng := rand.New(rand.NewSource(31))
	vids := gen.TaskVideos(rng, concept.Fighting, 2, 2)
	src, err := NewClipSource(vids, 4, 6)
	if err != nil {
		t.Fatal(err)
	}

	const k = 4
	frames, labels := src.NextClips(rand.New(rand.NewSource(99)), k)
	if len(frames) != k || len(labels) != k {
		t.Fatalf("got %d/%d clips, want %d", len(frames), len(labels), k)
	}
	for i := range frames {
		if frames[i].Rows() != 4+6-1 || len(labels[i]) != 6 {
			t.Fatalf("clip %d geometry %dx? labels %d", i, frames[i].Rows(), len(labels[i]))
		}
	}

	// Same master seed ⇒ bit-identical batch.
	frames2, labels2 := src.NextClips(rand.New(rand.NewSource(99)), k)
	for i := range frames {
		if !tensor.AllClose(frames[i], frames2[i], 0) {
			t.Fatalf("clip %d frames not deterministic", i)
		}
		for j := range labels[i] {
			if labels[i][j] != labels2[i][j] {
				t.Fatalf("clip %d labels not deterministic", i)
			}
		}
	}

	// Clip i matches a NextClip on the i-th derived stream.
	master := rand.New(rand.NewSource(99))
	for i := 0; i < k; i++ {
		want, wantLabels := src.NextClip(rand.New(rand.NewSource(master.Int63())))
		if !tensor.AllClose(frames[i], want, 0) {
			t.Fatalf("clip %d differs from per-stream derivation", i)
		}
		for j := range wantLabels {
			if labels[i][j] != wantLabels[j] {
				t.Fatalf("clip %d labels differ from per-stream derivation", i)
			}
		}
	}
}

// TestNextClipsMasterConsumption pins master-RNG usage to exactly k draws,
// so interleaving NextClips with other consumers stays reproducible.
func TestNextClipsMasterConsumption(t *testing.T) {
	gen := testGen(t)
	rng := rand.New(rand.NewSource(32))
	vids := gen.TaskVideos(rng, concept.Shooting, 1, 1)
	src, err := NewClipSource(vids, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := rand.New(rand.NewSource(7))
	src.NextClips(a, 3)
	after := a.Int63()

	b := rand.New(rand.NewSource(7))
	for i := 0; i < 3; i++ {
		b.Int63()
	}
	if want := b.Int63(); after != want {
		t.Fatalf("NextClips consumed a different number of master draws: next=%d want=%d", after, want)
	}
}
