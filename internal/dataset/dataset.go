// Package dataset synthesises the UCF-Crime substitute: untrimmed
// surveillance "videos" whose frames are pixel-feature vectors rendered
// from the concept ontology through the synthetic camera of
// internal/embed. An anomalous video begins and ends with normal content
// and contains one contiguous anomalous segment, mirroring the untrimmed
// structure of the real benchmark; per-frame labels mark the segment.
//
// The paper's splits (train: 800 normal + 810 anomalous; test: 150 normal
// + 140 anomalous) are reproduced by UCFSplitConfig, with a Scale knob so
// tests and laptop experiments can run proportionally smaller corpora.
package dataset

import (
	"fmt"
	"math/rand"

	"edgekg/internal/concept"
	"edgekg/internal/embed"
	"edgekg/internal/tensor"
)

// Video is one untrimmed clip.
type Video struct {
	// Class is Normal for normal videos, else the anomaly type of the
	// anomalous segment.
	Class concept.Class
	// Frames holds the pixel features, one row per frame.
	Frames *tensor.Tensor
	// Labels holds the per-frame class: 0 (normal) outside the anomalous
	// segment, int(Class) inside it.
	Labels []int
	// SegmentStart and SegmentEnd delimit the anomalous segment
	// [start, end); both are 0 for normal videos.
	SegmentStart, SegmentEnd int
}

// NumFrames returns the frame count.
func (v *Video) NumFrames() int { return v.Frames.Rows() }

// FrameAnomalous reports whether frame i lies in the anomalous segment.
func (v *Video) FrameAnomalous(i int) bool { return v.Labels[i] != 0 }

// Config controls frame synthesis.
type Config struct {
	// FramesPerVideo is the length of every generated video.
	FramesPerVideo int
	// AnomalyFrac is the fraction of an anomalous video covered by its
	// anomalous segment.
	AnomalyFrac float64
	// PixelNoise is the additive noise applied by the synthetic camera.
	PixelNoise float64
	// MixJitter perturbs profile weights per frame: weight ×
	// U(1−j, 1+j).
	MixJitter float64
	// BackgroundBleed mixes this fraction of normal-scene content into
	// anomalous frames (an anomaly still happens on a street).
	BackgroundBleed float64
	// SemanticNoise adds an isotropic perturbation in semantic space
	// before rendering.
	SemanticNoise float64
	// SharedAnomaly is the weight of the generic "anomalousness"
	// component mixed into every anomalous frame, aligned with the
	// ontology's danger hub concept. Pretrained joint embeddings carry
	// exactly such a shared disturbance signal across anomaly classes; it
	// is what keeps a deployed detector's score ranking weakly positive
	// on *new* anomaly types, so the monitor's top-K pseudo-labels stay
	// informative after a strong trend shift (Sec. III-D's selection rule
	// presumes it).
	SharedAnomaly float64
}

// SharedAnomalyConcept is the ontology concept anchoring the shared
// anomalousness direction.
const SharedAnomalyConcept = "danger"

// DefaultConfig returns the generation parameters used by the experiment
// suite.
func DefaultConfig() Config {
	return Config{
		FramesPerVideo: 64,
		AnomalyFrac:    0.4,
		PixelNoise:     0.05,
		MixJitter:      0.3,
		// A strong background bleed keeps anomalies subtle: an anomalous
		// frame is mostly ordinary street scene. Without it, "far from
		// normal" would separate *every* anomaly class and a detector
		// trained on one mission would generalise to all of them — the
		// trend-shift degradation of Fig. 5 only exists when detection
		// hinges on the mission-specific concepts.
		BackgroundBleed: 0.65,
		// Substantial semantic noise keeps frame ranking imperfect: a
		// detector relying on weak cross-mission concept overlap makes
		// ranking errors (AUC visibly below 1) while the trained mission's
		// strong alignment stays near-perfect — the gap Fig. 5 plots.
		SemanticNoise: 0.35,
		SharedAnomaly: 0.4,
	}
}

// Generator synthesises videos in a given joint embedding space.
type Generator struct {
	space *embed.Space
	ont   *concept.Ontology
	cfg   Config
}

// NewGenerator returns a Generator.
func NewGenerator(space *embed.Space, ont *concept.Ontology, cfg Config) (*Generator, error) {
	if cfg.FramesPerVideo < 4 {
		return nil, fmt.Errorf("dataset: FramesPerVideo %d too small", cfg.FramesPerVideo)
	}
	if cfg.AnomalyFrac <= 0 || cfg.AnomalyFrac >= 1 {
		return nil, fmt.Errorf("dataset: AnomalyFrac %v outside (0,1)", cfg.AnomalyFrac)
	}
	return &Generator{space: space, ont: ont, cfg: cfg}, nil
}

// Space returns the joint embedding space frames are rendered in.
func (g *Generator) Space() *embed.Space { return g.space }

// Config returns the generation parameters.
func (g *Generator) Config() Config { return g.cfg }

// SemanticFrame synthesises the semantic-space content of one frame of the
// given class: a jittered mixture of the class profile's concept vectors,
// plus background bleed for anomalies, plus isotropic semantic noise,
// normalised to the unit sphere.
func (g *Generator) SemanticFrame(rng *rand.Rand, cls concept.Class) *tensor.Tensor {
	acc := tensor.New(g.space.Dim())
	mix := func(c concept.Class, scale float64) {
		for _, w := range g.ont.Profile(c) {
			jitter := 1 + g.cfg.MixJitter*(2*rng.Float64()-1)
			wv := g.space.WordVector(w.Concept)
			tensor.AxpyInPlace(acc, scale*w.Weight*jitter, wv)
		}
	}
	if cls == concept.Normal {
		mix(concept.Normal, 1)
	} else {
		mix(cls, 1)
		mix(concept.Normal, g.cfg.BackgroundBleed)
		if g.cfg.SharedAnomaly > 0 {
			tensor.AxpyInPlace(acc, g.cfg.SharedAnomaly, g.space.WordVector(SharedAnomalyConcept))
		}
	}
	if g.cfg.SemanticNoise > 0 {
		noise := tensor.RandN(rng, g.cfg.SemanticNoise, g.space.Dim())
		tensor.AddInPlace(acc, noise)
	}
	return tensor.Normalize(acc)
}

// Frame synthesises one rendered (pixel-feature) frame of the given class.
func (g *Generator) Frame(rng *rand.Rand, cls concept.Class) *tensor.Tensor {
	return g.space.Render(rng, g.SemanticFrame(rng, cls), g.cfg.PixelNoise)
}

// Video synthesises one untrimmed video. Normal videos contain only
// normal frames; anomalous videos place one anomalous segment of
// AnomalyFrac × FramesPerVideo frames at a random interior position.
func (g *Generator) Video(rng *rand.Rand, cls concept.Class) *Video {
	n := g.cfg.FramesPerVideo
	frames := tensor.New(n, g.space.PixDim())
	labels := make([]int, n)
	v := &Video{Class: cls, Frames: frames, Labels: labels}
	if cls != concept.Normal {
		segLen := int(g.cfg.AnomalyFrac * float64(n))
		if segLen < 1 {
			segLen = 1
		}
		maxStart := n - segLen
		start := 0
		if maxStart > 0 {
			start = rng.Intn(maxStart + 1)
		}
		v.SegmentStart, v.SegmentEnd = start, start+segLen
	}
	for i := 0; i < n; i++ {
		fc := concept.Normal
		if cls != concept.Normal && i >= v.SegmentStart && i < v.SegmentEnd {
			fc = cls
			labels[i] = int(cls)
		}
		copy(frames.Row(i), g.Frame(rng, fc).Data())
	}
	return v
}

// Batch synthesises count videos of one class.
func (g *Generator) Batch(rng *rand.Rand, cls concept.Class, count int) []*Video {
	out := make([]*Video, count)
	for i := range out {
		out[i] = g.Video(rng, cls)
	}
	return out
}

// Split is a train/test partition.
type Split struct {
	Train []*Video
	Test  []*Video
}

// UCFSplitConfig mirrors the paper's dataset shape (Sec. IV-A2).
type UCFSplitConfig struct {
	// TrainNormal, TrainAnomalous, TestNormal, TestAnomalous are the video
	// counts; the paper's values are 800/810/150/140.
	TrainNormal, TrainAnomalous int
	TestNormal, TestAnomalous   int
	// Classes restricts the anomalous videos to these classes, cycled
	// round-robin; nil uses all 13 UCF-Crime classes.
	Classes []concept.Class
}

// PaperUCFSplit returns the full-scale paper configuration.
func PaperUCFSplit() UCFSplitConfig {
	return UCFSplitConfig{TrainNormal: 800, TrainAnomalous: 810, TestNormal: 150, TestAnomalous: 140}
}

// ScaledUCFSplit returns the paper configuration scaled by f (minimum one
// video per bucket), used by tests and laptop-scale experiments.
func ScaledUCFSplit(f float64) UCFSplitConfig {
	scale := func(n int) int {
		s := int(float64(n) * f)
		if s < 1 {
			s = 1
		}
		return s
	}
	return UCFSplitConfig{
		TrainNormal:    scale(800),
		TrainAnomalous: scale(810),
		TestNormal:     scale(150),
		TestAnomalous:  scale(140),
	}
}

// UCFSplit synthesises a train/test split per cfg.
func (g *Generator) UCFSplit(rng *rand.Rand, cfg UCFSplitConfig) *Split {
	classes := cfg.Classes
	if len(classes) == 0 {
		classes = concept.AnomalyClasses()
	}
	mk := func(normal, anomalous int) []*Video {
		var out []*Video
		for i := 0; i < normal; i++ {
			out = append(out, g.Video(rng, concept.Normal))
		}
		for i := 0; i < anomalous; i++ {
			out = append(out, g.Video(rng, classes[i%len(classes)]))
		}
		return out
	}
	return &Split{
		Train: mk(cfg.TrainNormal, cfg.TrainAnomalous),
		Test:  mk(cfg.TestNormal, cfg.TestAnomalous),
	}
}

// TaskVideos synthesises the single-anomaly task set used by the Fig. 5
// protocol: videos of one target anomaly plus normal videos.
func (g *Generator) TaskVideos(rng *rand.Rand, cls concept.Class, normal, anomalous int) []*Video {
	out := g.Batch(rng, concept.Normal, normal)
	return append(out, g.Batch(rng, cls, anomalous)...)
}

// FlattenEval flattens videos into per-frame scores input: a frame matrix
// and binary anomaly labels, the form AUC evaluation consumes.
func FlattenEval(videos []*Video) (*tensor.Tensor, []bool) {
	total := 0
	for _, v := range videos {
		total += v.NumFrames()
	}
	if total == 0 {
		return tensor.New(0, 0), nil
	}
	frames := tensor.New(total, videos[0].Frames.Cols())
	labels := make([]bool, total)
	row := 0
	for _, v := range videos {
		for i := 0; i < v.NumFrames(); i++ {
			copy(frames.Row(row), v.Frames.Row(i))
			labels[row] = v.FrameAnomalous(i)
			row++
		}
	}
	return frames, labels
}
