package dataset

import (
	"math/rand"
	"testing"

	"edgekg/internal/bpe"
	"edgekg/internal/concept"
	"edgekg/internal/embed"
	"edgekg/internal/tensor"
)

func testGen(t *testing.T) *Generator {
	t.Helper()
	corpus := concept.Builtin().Concepts()
	tok := bpe.Train(corpus, 600)
	space, err := embed.NewSpace(tok, corpus, embed.Config{Dim: 16, PixDim: 32, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.FramesPerVideo = 24
	g, err := NewGenerator(space, concept.Builtin(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGeneratorValidation(t *testing.T) {
	gen := testGen(t)
	if _, err := NewGenerator(gen.Space(), concept.Builtin(), Config{FramesPerVideo: 2, AnomalyFrac: 0.4}); err == nil {
		t.Error("tiny video accepted")
	}
	if _, err := NewGenerator(gen.Space(), concept.Builtin(), Config{FramesPerVideo: 24, AnomalyFrac: 1.5}); err == nil {
		t.Error("bad anomaly fraction accepted")
	}
}

func TestNormalVideoAllNormal(t *testing.T) {
	gen := testGen(t)
	rng := rand.New(rand.NewSource(1))
	v := gen.Video(rng, concept.Normal)
	if v.NumFrames() != 24 {
		t.Fatalf("frames = %d", v.NumFrames())
	}
	for i := range v.Labels {
		if v.Labels[i] != 0 || v.FrameAnomalous(i) {
			t.Fatalf("normal video frame %d labelled anomalous", i)
		}
	}
	if v.SegmentStart != 0 || v.SegmentEnd != 0 {
		t.Error("normal video has a segment")
	}
}

func TestAnomalousVideoSegmentStructure(t *testing.T) {
	gen := testGen(t)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		v := gen.Video(rng, concept.Robbery)
		segLen := v.SegmentEnd - v.SegmentStart
		want := int(gen.Config().AnomalyFrac * 24)
		if segLen != want {
			t.Fatalf("segment length %d, want %d", segLen, want)
		}
		for i := range v.Labels {
			inSeg := i >= v.SegmentStart && i < v.SegmentEnd
			if inSeg && v.Labels[i] != int(concept.Robbery) {
				t.Fatalf("segment frame %d label %d", i, v.Labels[i])
			}
			if !inSeg && v.Labels[i] != 0 {
				t.Fatalf("non-segment frame %d label %d", i, v.Labels[i])
			}
		}
	}
}

// Frames must be semantically separable: an anomaly frame's encoding is
// closer to its class profile direction than a normal frame's is.
func TestFrameSemanticSeparation(t *testing.T) {
	gen := testGen(t)
	rng := rand.New(rand.NewSource(3))
	space := gen.Space()
	classDir := func(cls concept.Class) *tensor.Tensor {
		acc := tensor.New(space.Dim())
		for _, w := range concept.Builtin().Profile(cls) {
			tensor.AxpyInPlace(acc, w.Weight, space.WordVector(w.Concept))
		}
		return tensor.Normalize(acc)
	}
	dir := classDir(concept.Explosion)
	var anomSim, normSim float64
	const trials = 30
	for i := 0; i < trials; i++ {
		af := space.EncodeImage(gen.Frame(rng, concept.Explosion))
		nf := space.EncodeImage(gen.Frame(rng, concept.Normal))
		anomSim += tensor.CosineSimilarity(af, dir)
		normSim += tensor.CosineSimilarity(nf, dir)
	}
	anomSim /= trials
	normSim /= trials
	if anomSim < normSim+0.3 {
		t.Errorf("separation too weak: anomaly %v vs normal %v", anomSim, normSim)
	}
}

func TestUCFSplitCounts(t *testing.T) {
	gen := testGen(t)
	rng := rand.New(rand.NewSource(4))
	cfg := UCFSplitConfig{TrainNormal: 4, TrainAnomalous: 5, TestNormal: 2, TestAnomalous: 3}
	split := gen.UCFSplit(rng, cfg)
	if len(split.Train) != 9 || len(split.Test) != 5 {
		t.Fatalf("split sizes %d/%d", len(split.Train), len(split.Test))
	}
	normals, anomalous := 0, 0
	for _, v := range split.Train {
		if v.Class == concept.Normal {
			normals++
		} else {
			anomalous++
		}
	}
	if normals != 4 || anomalous != 5 {
		t.Errorf("train composition %d/%d", normals, anomalous)
	}
}

func TestPaperSplitMatchesPaper(t *testing.T) {
	cfg := PaperUCFSplit()
	if cfg.TrainNormal != 800 || cfg.TrainAnomalous != 810 || cfg.TestNormal != 150 || cfg.TestAnomalous != 140 {
		t.Errorf("paper split wrong: %+v", cfg)
	}
	s := ScaledUCFSplit(0.01)
	if s.TrainNormal != 8 || s.TestAnomalous != 1 {
		t.Errorf("scaled split %+v", s)
	}
}

func TestTaskVideosComposition(t *testing.T) {
	gen := testGen(t)
	rng := rand.New(rand.NewSource(5))
	vids := gen.TaskVideos(rng, concept.Stealing, 3, 4)
	if len(vids) != 7 {
		t.Fatalf("count %d", len(vids))
	}
	for i := 0; i < 3; i++ {
		if vids[i].Class != concept.Normal {
			t.Error("first block must be normal")
		}
	}
	for i := 3; i < 7; i++ {
		if vids[i].Class != concept.Stealing {
			t.Error("second block must be target anomaly")
		}
	}
}

func TestFlattenEval(t *testing.T) {
	gen := testGen(t)
	rng := rand.New(rand.NewSource(6))
	vids := []*Video{gen.Video(rng, concept.Normal), gen.Video(rng, concept.Arson)}
	frames, labels := FlattenEval(vids)
	if frames.Rows() != 48 || len(labels) != 48 {
		t.Fatalf("flatten shape %d/%d", frames.Rows(), len(labels))
	}
	anomalous := 0
	for _, l := range labels {
		if l {
			anomalous++
		}
	}
	want := int(gen.Config().AnomalyFrac * 24)
	if anomalous != want {
		t.Errorf("anomalous frames %d, want %d", anomalous, want)
	}
	if frames2, labels2 := FlattenEval(nil); frames2.Size() != 0 || labels2 != nil {
		t.Error("empty flatten should be empty")
	}
}

func TestClipSourceGeometry(t *testing.T) {
	gen := testGen(t)
	rng := rand.New(rand.NewSource(7))
	vids := gen.TaskVideos(rng, concept.Fighting, 2, 2)
	src, err := NewClipSource(vids, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	frames, labels := src.NextClip(rng)
	if frames.Rows() != 4+6-1 {
		t.Errorf("clip rows %d", frames.Rows())
	}
	if len(labels) != 6 {
		t.Errorf("labels %d", len(labels))
	}
	if src.Window() != 4 || src.Batch() != 6 {
		t.Error("geometry accessors wrong")
	}
}

func TestClipSourceLabelAlignment(t *testing.T) {
	gen := testGen(t)
	rng := rand.New(rand.NewSource(8))
	v := gen.Video(rng, concept.Shooting)
	src, err := NewClipSource([]*Video{v}, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Sample many clips; every label must equal the video label of the
	// window's final frame. We verify by matching frame contents.
	for trial := 0; trial < 20; trial++ {
		frames, labels := src.NextClip(rng)
		for k, lab := range labels {
			rowK := frames.Row(3 - 1 + k)
			found := false
			for i := 0; i < v.NumFrames(); i++ {
				if floatsEqual(rowK, v.Frames.Row(i)) {
					if v.Labels[i] != lab {
						t.Fatalf("label %d for frame with video label %d", lab, v.Labels[i])
					}
					found = true
					break
				}
			}
			if !found {
				t.Fatal("clip frame not found in source video")
			}
		}
	}
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestClipSourceValidation(t *testing.T) {
	gen := testGen(t)
	rng := rand.New(rand.NewSource(9))
	vids := []*Video{gen.Video(rng, concept.Normal)}
	if _, err := NewClipSource(nil, 4, 4); err == nil {
		t.Error("empty videos accepted")
	}
	if _, err := NewClipSource(vids, 20, 20); err == nil {
		t.Error("clip longer than video accepted")
	}
	if _, err := NewClipSource(vids, 0, 4); err == nil {
		t.Error("zero window accepted")
	}
}

func TestBalancedClipFindsAnomalies(t *testing.T) {
	gen := testGen(t)
	rng := rand.New(rand.NewSource(10))
	v := gen.Video(rng, concept.Burglary)
	src, err := NewClipSource([]*Video{v}, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for trial := 0; trial < 20; trial++ {
		_, labels := src.BalancedClip(rng, 0.3, 20)
		anom := 0
		for _, l := range labels {
			if l != 0 {
				anom++
			}
		}
		if float64(anom) >= 0.3*float64(len(labels)) {
			hits++
		}
	}
	if hits < 15 {
		t.Errorf("balanced sampling hit rate %d/20", hits)
	}
}

func TestScheduleAndStream(t *testing.T) {
	gen := testGen(t)
	rng := rand.New(rand.NewSource(11))
	sched := Schedule{Phases: []Phase{
		{Class: concept.Stealing, Steps: 10},
		{Class: concept.Robbery, Steps: 10},
	}}
	if sched.TotalSteps() != 20 {
		t.Errorf("total steps %d", sched.TotalSteps())
	}
	if p, i := sched.PhaseAt(5); p.Class != concept.Stealing || i != 0 {
		t.Error("phase 0 wrong")
	}
	if p, i := sched.PhaseAt(15); p.Class != concept.Robbery || i != 1 {
		t.Error("phase 1 wrong")
	}
	if p, _ := sched.PhaseAt(99); p.Class != concept.Robbery {
		t.Error("clamping past end broken")
	}

	stream, err := NewStream(gen, sched, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if stream.CurrentClass() != concept.Stealing {
		t.Error("initial phase wrong")
	}
	sawAnomaly, sawNormal := false, false
	for i := 0; i < 10; i++ {
		pix, anom, cls := stream.Next()
		if pix.Size() != gen.Space().PixDim() {
			t.Fatal("frame size wrong")
		}
		if anom {
			sawAnomaly = true
			if cls != concept.Stealing {
				t.Errorf("phase-0 anomaly class %v", cls)
			}
		} else {
			sawNormal = true
			if cls != concept.Normal {
				t.Errorf("normal frame class %v", cls)
			}
		}
	}
	if !sawAnomaly || !sawNormal {
		t.Error("stream at rate 0.5 should mix anomalies and normals in 10 frames (flaky only with astronomical improbability)")
	}
	if stream.Step() != 10 {
		t.Errorf("step %d", stream.Step())
	}
	if stream.PhaseIndex() != 1 {
		t.Errorf("phase index %d after 10 frames", stream.PhaseIndex())
	}
	if stream.CurrentClass() != concept.Robbery {
		t.Error("shift did not occur")
	}
}

func TestStreamValidation(t *testing.T) {
	gen := testGen(t)
	rng := rand.New(rand.NewSource(12))
	if _, err := NewStream(gen, Schedule{}, 0.5, rng); err == nil {
		t.Error("empty schedule accepted")
	}
	sched := Schedule{Phases: []Phase{{Class: concept.Arson, Steps: 5}}}
	if _, err := NewStream(gen, sched, 1.5, rng); err == nil {
		t.Error("bad rate accepted")
	}
}
