package dataset

import (
	"fmt"
	"math/rand"

	"edgekg/internal/concept"
	"edgekg/internal/tensor"
)

// Phase is one segment of an anomaly-trend schedule: for Steps frames the
// stream's anomalous content comes from Class.
type Phase struct {
	Class concept.Class
	Steps int
}

// Schedule describes how the anomaly trend shifts over time (Fig. 1) —
// e.g. Stealing for 2000 frames, then Robbery.
type Schedule struct {
	Phases []Phase
}

// TotalSteps returns the schedule length.
func (s Schedule) TotalSteps() int {
	n := 0
	for _, p := range s.Phases {
		n += p.Steps
	}
	return n
}

// PhaseAt returns the phase covering step t (clamping past the end) and
// its index.
func (s Schedule) PhaseAt(t int) (Phase, int) {
	acc := 0
	for i, p := range s.Phases {
		acc += p.Steps
		if t < acc {
			return p, i
		}
	}
	last := len(s.Phases) - 1
	return s.Phases[last], last
}

// Stream pumps single frames with a scheduled anomaly trend — the
// deployment-time input of Fig. 2(C). Each step emits a normal frame with
// probability 1−AnomalyRate, else an anomalous frame of the current
// phase's class.
type Stream struct {
	gen         *Generator
	schedule    Schedule
	anomalyRate float64
	rng         *rand.Rand
	step        int
}

// NewStream returns a stream over the schedule.
func NewStream(gen *Generator, schedule Schedule, anomalyRate float64, rng *rand.Rand) (*Stream, error) {
	if len(schedule.Phases) == 0 {
		return nil, fmt.Errorf("dataset: empty schedule")
	}
	if anomalyRate < 0 || anomalyRate > 1 {
		return nil, fmt.Errorf("dataset: anomaly rate %v outside [0,1]", anomalyRate)
	}
	return &Stream{gen: gen, schedule: schedule, anomalyRate: anomalyRate, rng: rng}, nil
}

// Next emits the next frame, its binary anomaly ground truth, and the
// class it was drawn from.
func (s *Stream) Next() (pix *tensor.Tensor, anomalous bool, cls concept.Class) {
	phase, _ := s.schedule.PhaseAt(s.step)
	s.step++
	if s.rng.Float64() < s.anomalyRate {
		return s.gen.Frame(s.rng, phase.Class), true, phase.Class
	}
	return s.gen.Frame(s.rng, concept.Normal), false, concept.Normal
}

// Step returns how many frames have been emitted.
func (s *Stream) Step() int { return s.step }

// CurrentClass returns the class of the phase covering the next frame.
func (s *Stream) CurrentClass() concept.Class {
	p, _ := s.schedule.PhaseAt(s.step)
	return p.Class
}

// PhaseIndex returns the index of the phase covering the next frame.
func (s *Stream) PhaseIndex() int {
	_, i := s.schedule.PhaseAt(s.step)
	return i
}

// ClipSource samples contiguous training clips from a video set, the form
// the detector trainer consumes: each clip of window+batch−1 consecutive
// frames yields batch overlapping windows with per-window labels (the
// label of each window's final frame), so the smoothness regulariser sees
// genuinely consecutive scores.
type ClipSource struct {
	videos   []*Video
	window   int
	batch    int
	labelMap func(int) int
}

// NewClipSource validates the video set against the requested geometry.
func NewClipSource(videos []*Video, window, batch int) (*ClipSource, error) {
	if len(videos) == 0 {
		return nil, fmt.Errorf("dataset: no videos")
	}
	if window < 1 || batch < 1 {
		return nil, fmt.Errorf("dataset: window %d / batch %d must be ≥1", window, batch)
	}
	need := window + batch - 1
	for _, v := range videos {
		if v.NumFrames() < need {
			return nil, fmt.Errorf("dataset: video with %d frames shorter than clip length %d", v.NumFrames(), need)
		}
	}
	return &ClipSource{videos: videos, window: window, batch: batch}, nil
}

// WithLabelMap installs a per-frame label remapping applied to every
// emitted label — e.g. BinaryLabelMap for the single-mission protocol
// where any anomaly class becomes decision class 1. It returns c.
func (c *ClipSource) WithLabelMap(f func(int) int) *ClipSource {
	c.labelMap = f
	return c
}

// BinaryLabelMap collapses every anomaly class to 1 (normal stays 0).
func BinaryLabelMap(label int) int {
	if label != 0 {
		return 1
	}
	return 0
}

// Window returns the temporal window length T.
func (c *ClipSource) Window() int { return c.window }

// Batch returns the number of windows per clip.
func (c *ClipSource) Batch() int { return c.batch }

// NextClip samples one clip: frames is (window+batch−1 × pixDim), labels
// has batch entries — labels[k] is the class of frame window+k−1, the
// final frame of window k.
func (c *ClipSource) NextClip(rng *rand.Rand) (frames *tensor.Tensor, labels []int) {
	v := c.videos[rng.Intn(len(c.videos))]
	clipLen := c.window + c.batch - 1
	maxStart := v.NumFrames() - clipLen
	start := 0
	if maxStart > 0 {
		start = rng.Intn(maxStart + 1)
	}
	frames = tensor.SliceRows(v.Frames, start, start+clipLen)
	labels = make([]int, c.batch)
	for k := 0; k < c.batch; k++ {
		labels[k] = v.Labels[start+c.window-1+k]
		if c.labelMap != nil {
			labels[k] = c.labelMap(labels[k])
		}
	}
	return frames, labels
}

// NextClips samples k clips for one data-parallel microbatch. The master
// rng is consumed exactly k times — one seed per clip, drawn up front in
// clip order — and each clip is then sampled from its own derived RNG
// stream, so the result is a pure function of the master RNG state and k:
// identical no matter how many workers sample the clips, and identical to
// what a sequential trainer deriving the same streams would see. Clip i of
// a call equals clip 0 of an NextClips(rng, 1) call made after i seed
// draws, which is what lets the sequential-accumulation reference consume
// the same microbatch as the sharded step.
func (c *ClipSource) NextClips(rng *rand.Rand, k int) ([]*tensor.Tensor, [][]int) {
	if k < 1 {
		k = 1
	}
	seeds := make([]int64, k)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	frames := make([]*tensor.Tensor, k)
	labels := make([][]int, k)
	for i := 0; i < k; i++ {
		frames[i], labels[i] = c.NextClip(rand.New(rand.NewSource(seeds[i])))
	}
	return frames, labels
}

// BalancedClip samples a clip whose final-frame labels are anomalous with
// probability ≥ minAnomalyFrac when possible, retrying up to the given
// budget — a cheap way to keep gradient signal on rare anomalies.
func (c *ClipSource) BalancedClip(rng *rand.Rand, minAnomalyFrac float64, retries int) (*tensor.Tensor, []int) {
	var frames *tensor.Tensor
	var labels []int
	for i := 0; i <= retries; i++ {
		frames, labels = c.NextClip(rng)
		anom := 0
		for _, l := range labels {
			if l != 0 {
				anom++
			}
		}
		if float64(anom) >= minAnomalyFrac*float64(len(labels)) {
			break
		}
	}
	return frames, labels
}
