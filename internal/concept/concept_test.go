package concept

import (
	"testing"
	"testing/quick"
)

func TestClassNamesRoundTrip(t *testing.T) {
	for c := Class(0); c < numClasses; c++ {
		got, ok := ClassByName(c.String())
		if !ok || got != c {
			t.Errorf("ClassByName(%q) = %v, %v", c.String(), got, ok)
		}
	}
	if _, ok := ClassByName("NotAClass"); ok {
		t.Error("unknown class resolved")
	}
	if Class(99).String() != "Class(99)" {
		t.Errorf("out-of-range String = %q", Class(99).String())
	}
}

func TestAnomalyClassesExcludesNormal(t *testing.T) {
	cs := AnomalyClasses()
	if len(cs) != 13 {
		t.Fatalf("AnomalyClasses count = %d, want 13 (UCF-Crime)", len(cs))
	}
	for _, c := range cs {
		if c == Normal {
			t.Error("Normal included in anomaly classes")
		}
	}
}

func TestBuiltinProfilesComplete(t *testing.T) {
	o := Builtin()
	for c := Class(0); c < numClasses; c++ {
		p := o.Profile(c)
		if len(p) < 5 {
			t.Errorf("class %v has only %d profile concepts", c, len(p))
		}
		for _, w := range p {
			if w.Weight <= 0 || w.Weight > 1 {
				t.Errorf("class %v concept %q weight %v out of (0,1]", c, w.Concept, w.Weight)
			}
			if !o.Has(w.Concept) {
				t.Errorf("profile concept %q missing from ontology", w.Concept)
			}
		}
		// Profile sorted by descending weight.
		for i := 1; i < len(p); i++ {
			if p[i].Weight > p[i-1].Weight {
				t.Errorf("class %v profile not sorted at %d", c, i)
			}
		}
	}
}

func TestBuiltinIsSingleton(t *testing.T) {
	if Builtin() != Builtin() {
		t.Error("Builtin must return the shared instance")
	}
}

func TestRelatednessSymmetric(t *testing.T) {
	o := Builtin()
	cs := o.Concepts()
	f := func(i, j uint) bool {
		a := cs[i%uint(len(cs))]
		b := cs[j%uint(len(cs))]
		return o.Relatedness(a, b) == o.Relatedness(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNoSelfRelations(t *testing.T) {
	o := Builtin()
	for _, c := range o.Concepts() {
		if o.Relatedness(c, c) != 0 {
			t.Errorf("concept %q related to itself", c)
		}
		for _, r := range o.Related(c) {
			if r.Concept == c {
				t.Errorf("Related(%q) contains itself", c)
			}
			if r.Weight <= 0 || r.Weight > 1 {
				t.Errorf("relation %q-%q weight %v out of (0,1]", c, r.Concept, r.Weight)
			}
		}
	}
}

func TestRelatedSortedDescending(t *testing.T) {
	o := Builtin()
	for _, c := range o.Concepts() {
		rs := o.Related(c)
		for i := 1; i < len(rs); i++ {
			if rs[i].Weight > rs[i-1].Weight {
				t.Fatalf("Related(%q) not sorted", c)
			}
		}
	}
}

// The experiment-defining overlap structure: Stealing↔Robbery must overlap
// far more than Stealing↔Explosion. Fig. 5's weak/strong distinction rests
// on exactly this.
func TestShiftOverlapStructure(t *testing.T) {
	o := Builtin()
	weak := o.ClassOverlap(Stealing, Robbery)
	strong := o.ClassOverlap(Stealing, Explosion)
	if weak <= 0.1 {
		t.Errorf("Stealing-Robbery overlap %v too small for a weak shift", weak)
	}
	if strong > 0.02 {
		t.Errorf("Stealing-Explosion overlap %v too large for a strong shift", strong)
	}
	if weak <= strong*3 {
		t.Errorf("weak overlap %v not clearly above strong overlap %v", weak, strong)
	}
	// Overlap is symmetric and self-overlap is 1.
	if o.ClassOverlap(Robbery, Stealing) != weak {
		t.Error("overlap not symmetric")
	}
	if self := o.ClassOverlap(Stealing, Stealing); self < 0.999 || self > 1.001 {
		t.Errorf("self overlap = %v", self)
	}
}

func TestEveryAnomalyClassDistinctFromNormal(t *testing.T) {
	o := Builtin()
	for _, c := range AnomalyClasses() {
		if ov := o.ClassOverlap(c, Normal); ov > 0.3 {
			t.Errorf("class %v overlaps Normal too much: %v", c, ov)
		}
	}
}

func TestNeighborhoodExpansion(t *testing.T) {
	o := Builtin()
	n1 := o.Neighborhood([]string{"stealing"}, 1)
	if len(n1) == 0 {
		t.Fatal("stealing has no neighbourhood")
	}
	for _, c := range n1 {
		if c == "stealing" {
			t.Error("neighbourhood contains seed")
		}
	}
	n2 := o.Neighborhood([]string{"stealing"}, 2)
	if len(n2) <= len(n1) {
		t.Errorf("depth-2 neighbourhood (%d) not larger than depth-1 (%d)", len(n2), len(n1))
	}
	// Determinism.
	n2b := o.Neighborhood([]string{"stealing"}, 2)
	if len(n2) != len(n2b) {
		t.Fatal("neighbourhood not deterministic")
	}
	for i := range n2 {
		if n2[i] != n2b[i] {
			t.Fatal("neighbourhood order not deterministic")
		}
	}
}

// Chains needed by deep KG generation must exist: a weapon-danger chain
// from robbery and a violence chain from fighting.
func TestCuratedReasoningChains(t *testing.T) {
	o := Builtin()
	chains := [][]string{
		{"gun", "weapon", "danger"},
		{"punch", "violence", "danger"},
		{"theft", "crime", "danger"},
		{"detonation", "blast", "danger"},
	}
	for _, chain := range chains {
		for i := 0; i+1 < len(chain); i++ {
			if o.Relatedness(chain[i], chain[i+1]) == 0 {
				t.Errorf("missing chain link %q-%q", chain[i], chain[i+1])
			}
		}
	}
}

func TestProfileReturnsCopy(t *testing.T) {
	o := Builtin()
	p := o.Profile(Stealing)
	p[0].Concept = "mutated"
	if o.Profile(Stealing)[0].Concept == "mutated" {
		t.Error("Profile leaked internal state")
	}
}
