// Package concept provides the ConceptNet-5 substitute: an embedded
// ontology of surveillance-domain concepts with weighted relatedness
// edges, plus per-anomaly-class "profiles" describing which concepts a
// frame of that class expresses.
//
// The ontology plays two roles. During KG generation it answers the
// oracle's "which concepts follow from this one" queries (the reasoning
// chains GPT-4 produces in the paper). During data synthesis it defines
// the ground-truth semantic content of frames, so the overlap between two
// classes' profiles — e.g. Stealing∩Robbery large, Stealing∩Explosion
// almost empty — directly produces the weak-vs-strong-shift behaviour of
// Fig. 5.
package concept

import (
	"fmt"
	"math"
	"sort"
)

// Class identifies an anomaly class. The thirteen anomaly classes are
// those of the UCF-Crime benchmark (Sultani et al., CVPR 2018) that the
// paper evaluates on, plus Normal.
type Class int

// UCF-Crime classes. Normal is class 0 so the decision head's convention
// pN = softmax output 0 (Sec. III-C) maps directly onto Class values.
const (
	Normal Class = iota
	Abuse
	Arrest
	Arson
	Assault
	Burglary
	Explosion
	Fighting
	RoadAccidents
	Robbery
	Shooting
	Shoplifting
	Stealing
	Vandalism
	numClasses
)

// NumClasses is the total number of classes including Normal.
const NumClasses = int(numClasses)

// AnomalyClasses lists the 13 anomaly classes (excluding Normal).
func AnomalyClasses() []Class {
	out := make([]Class, 0, NumClasses-1)
	for c := Class(1); c < numClasses; c++ {
		out = append(out, c)
	}
	return out
}

var classNames = [...]string{
	"Normal", "Abuse", "Arrest", "Arson", "Assault", "Burglary",
	"Explosion", "Fighting", "RoadAccidents", "Robbery", "Shooting",
	"Shoplifting", "Stealing", "Vandalism",
}

// String returns the class name.
func (c Class) String() string {
	if c < 0 || int(c) >= len(classNames) {
		return fmt.Sprintf("Class(%d)", int(c))
	}
	return classNames[c]
}

// ClassByName resolves a class from its name, case-sensitively.
func ClassByName(name string) (Class, bool) {
	for i, n := range classNames {
		if n == name {
			return Class(i), true
		}
	}
	return 0, false
}

// Weighted is a concept with an importance weight in (0, 1].
type Weighted struct {
	Concept string
	Weight  float64
}

// Ontology is an undirected weighted concept graph plus per-class concept
// profiles.
type Ontology struct {
	concepts []string
	index    map[string]int
	related  map[string]map[string]float64
	profiles map[Class][]Weighted
}

// newOntology builds an ontology from class profiles and extra curated
// relations. Relations are derived from profile co-membership (two
// concepts in one profile relate with weight proportional to the product
// of their profile weights) and then overlaid with the curated links.
func newOntology(profiles map[Class][]Weighted, curated []relation) *Ontology {
	o := &Ontology{
		index:    make(map[string]int),
		related:  make(map[string]map[string]float64),
		profiles: profiles,
	}
	add := func(c string) {
		if _, ok := o.index[c]; !ok {
			o.index[c] = len(o.concepts)
			o.concepts = append(o.concepts, c)
		}
	}
	for _, ws := range profiles {
		for _, w := range ws {
			add(w.Concept)
		}
	}
	link := func(a, b string, w float64) {
		if a == b || w <= 0 {
			return
		}
		if o.related[a] == nil {
			o.related[a] = make(map[string]float64)
		}
		if o.related[b] == nil {
			o.related[b] = make(map[string]float64)
		}
		if w > o.related[a][b] {
			o.related[a][b] = w
			o.related[b][a] = w
		}
	}
	for _, ws := range profiles {
		for i := range ws {
			for j := i + 1; j < len(ws); j++ {
				link(ws[i].Concept, ws[j].Concept, ws[i].Weight*ws[j].Weight)
			}
		}
	}
	for _, r := range curated {
		add(r.a)
		add(r.b)
		link(r.a, r.b, r.w)
	}
	sort.Strings(o.concepts)
	for i, c := range o.concepts {
		o.index[c] = i
	}
	return o
}

type relation struct {
	a, b string
	w    float64
}

// Concepts returns all concept words in sorted order. The slice is shared;
// callers must not modify it.
func (o *Ontology) Concepts() []string { return o.concepts }

// Has reports whether the ontology contains concept c.
func (o *Ontology) Has(c string) bool {
	_, ok := o.index[c]
	return ok
}

// Relatedness returns the relation weight between two concepts (0 when
// unrelated or unknown).
func (o *Ontology) Relatedness(a, b string) float64 {
	return o.related[a][b]
}

// Related returns the concepts related to c sorted by descending weight
// (ties broken alphabetically for determinism).
func (o *Ontology) Related(c string) []Weighted {
	m := o.related[c]
	out := make([]Weighted, 0, len(m))
	for k, w := range m {
		out = append(out, Weighted{Concept: k, Weight: w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Concept < out[j].Concept
	})
	return out
}

// Profile returns the weighted concept profile of a class, sorted by
// descending weight. The returned slice is a copy.
func (o *Ontology) Profile(c Class) []Weighted {
	p := o.profiles[c]
	out := append([]Weighted(nil), p...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Concept < out[j].Concept
	})
	return out
}

// ClassOverlap returns the cosine similarity of two classes' profile
// weight vectors in concept space — the quantitative meaning of "weak"
// (high overlap) versus "strong" (low overlap) anomaly shifts.
func (o *Ontology) ClassOverlap(a, b Class) float64 {
	va := o.profileVector(a)
	vb := o.profileVector(b)
	dot, na, nb := 0.0, 0.0, 0.0
	for i := range va {
		dot += va[i] * vb[i]
		na += va[i] * va[i]
		nb += vb[i] * vb[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

func (o *Ontology) profileVector(c Class) []float64 {
	v := make([]float64, len(o.concepts))
	for _, w := range o.profiles[c] {
		v[o.index[w.Concept]] = w.Weight
	}
	return v
}

// Neighborhood returns the set of concepts reachable from seeds within
// depth hops, excluding the seeds themselves, sorted alphabetically.
func (o *Ontology) Neighborhood(seeds []string, depth int) []string {
	seen := make(map[string]bool, len(seeds))
	for _, s := range seeds {
		seen[s] = true
	}
	frontier := append([]string(nil), seeds...)
	var out []string
	for d := 0; d < depth; d++ {
		var next []string
		for _, c := range frontier {
			for _, r := range o.Related(c) {
				if !seen[r.Concept] {
					seen[r.Concept] = true
					next = append(next, r.Concept)
					out = append(out, r.Concept)
				}
			}
		}
		frontier = next
	}
	sort.Strings(out)
	return out
}
