package concept

import "sync"

// Builtin returns the embedded surveillance-domain ontology. It is built
// once and shared; the Ontology is immutable after construction.
func Builtin() *Ontology {
	builtinOnce.Do(func() {
		builtinOntology = newOntology(builtinProfiles(), curatedRelations())
	})
	return builtinOntology
}

var (
	builtinOnce     sync.Once
	builtinOntology *Ontology
)

// builtinProfiles defines which concepts each class expresses and how
// strongly. The overlap structure is deliberate:
//
//   - Stealing and Robbery share {theft, loot, bag, getaway, lookout} —
//     a *weak* shift pair (Fig. 5A);
//   - Stealing and Explosion share nothing — a *strong* shift pair
//     (Fig. 5B);
//   - every anomaly class shares the generic scene concepts with Normal
//     only weakly, keeping the detection problem solvable.
func builtinProfiles() map[Class][]Weighted {
	return map[Class][]Weighted{
		Normal: {
			{"street", 0.9}, {"sidewalk", 0.8}, {"pedestrian", 0.9},
			{"walking", 0.85}, {"vehicle", 0.6}, {"daylight", 0.7},
			{"building", 0.7}, {"crowd", 0.5}, {"shopping", 0.5},
			{"conversation", 0.4}, {"traffic", 0.6}, {"waiting", 0.4},
			{"storefront", 0.5}, {"parking", 0.5},
		},
		Abuse: {
			{"abuse", 1.0}, {"victim", 0.9}, {"aggression", 0.85},
			{"shouting", 0.7}, {"cornering", 0.6}, {"fear", 0.7},
			{"intimidation", 0.6}, {"struggle", 0.5},
		},
		Arrest: {
			{"arrest", 1.0}, {"police", 0.95}, {"handcuffs", 0.85},
			{"patrol", 0.6}, {"siren", 0.6}, {"custody", 0.7},
			{"uniform", 0.5}, {"restraint", 0.6},
		},
		Arson: {
			{"arson", 1.0}, {"fire", 0.9}, {"gasoline", 0.8},
			{"ignition", 0.75}, {"flame", 0.85}, {"smoke", 0.8},
			{"torch", 0.6}, {"accelerant", 0.55},
		},
		Assault: {
			{"assault", 1.0}, {"punch", 0.85}, {"aggression", 0.8},
			{"victim", 0.75}, {"struggle", 0.7}, {"kick", 0.65},
			{"attack", 0.8}, {"injury", 0.5},
		},
		Burglary: {
			{"burglary", 1.0}, {"breakin", 0.9}, {"window", 0.7},
			{"crowbar", 0.65}, {"night", 0.6}, {"intruder", 0.8},
			{"theft", 0.7}, {"forced-entry", 0.6}, {"alarm", 0.5},
		},
		Explosion: {
			{"explosion", 1.0}, {"blast", 0.95}, {"fireball", 0.8},
			{"smoke", 0.75}, {"debris", 0.8}, {"shockwave", 0.7},
			{"detonation", 0.75}, {"rubble", 0.6}, {"panic", 0.55},
		},
		Fighting: {
			{"fighting", 1.0}, {"brawl", 0.9}, {"punch", 0.8},
			{"kick", 0.7}, {"crowd", 0.5}, {"struggle", 0.75},
			{"shoving", 0.6}, {"aggression", 0.7},
		},
		RoadAccidents: {
			{"accident", 1.0}, {"collision", 0.95}, {"crash", 0.9},
			{"vehicle", 0.8}, {"skid", 0.6}, {"debris", 0.55},
			{"injury", 0.6}, {"wreckage", 0.6}, {"traffic", 0.4},
		},
		Robbery: {
			{"robbery", 1.0}, {"firearm", 0.9}, {"gun", 0.85},
			{"mask", 0.8}, {"threat", 0.8}, {"cash", 0.7},
			{"register", 0.6}, {"demand", 0.65}, {"holdup", 0.75},
			{"loot", 0.35}, {"getaway", 0.3}, {"theft", 0.3},
			{"bag", 0.25}, {"lookout", 0.2},
		},
		Shooting: {
			{"shooting", 1.0}, {"gun", 0.9}, {"firearm", 0.85},
			{"muzzle-flash", 0.7}, {"gunshot", 0.9}, {"panic", 0.6},
			{"victim", 0.6}, {"fleeing", 0.55},
		},
		Shoplifting: {
			{"shoplifting", 1.0}, {"store", 0.8}, {"concealment", 0.8},
			{"merchandise", 0.75}, {"bag", 0.6}, {"theft", 0.7},
			{"aisle", 0.5}, {"sneaky", 0.55}, {"lookout", 0.4},
		},
		Stealing: {
			{"stealing", 1.0}, {"theft", 0.9}, {"sneaky", 0.85},
			{"pickpocket", 0.75}, {"unattended", 0.7}, {"bag", 0.65},
			{"wallet", 0.6}, {"loot", 0.6}, {"grab", 0.6},
			{"lookout", 0.5}, {"concealment", 0.55}, {"getaway", 0.45},
			{"car", 0.4},
		},
		Vandalism: {
			{"vandalism", 1.0}, {"graffiti", 0.85}, {"smash", 0.8},
			{"spray", 0.7}, {"damage", 0.75}, {"window", 0.55},
			{"kicking", 0.5}, {"destruction", 0.7},
		},
	}
}

// curatedRelations adds cross-profile reasoning links the profile
// co-membership rule cannot produce — chains like firearm→weapon→danger
// that give generated KGs depth beyond a single class's vocabulary.
func curatedRelations() []relation {
	return []relation{
		// Weapon cluster.
		{"gun", "weapon", 0.9}, {"firearm", "weapon", 0.9},
		{"knife", "weapon", 0.8}, {"weapon", "danger", 0.8},
		{"muzzle-flash", "gunshot", 0.8},
		// Theft cluster.
		{"theft", "crime", 0.85}, {"loot", "valuables", 0.7},
		{"wallet", "valuables", 0.75}, {"bag", "valuables", 0.5},
		{"merchandise", "valuables", 0.6}, {"cash", "valuables", 0.8},
		{"pickpocket", "crowd", 0.4}, {"sneaky", "hiding", 0.7},
		{"concealment", "hiding", 0.8}, {"lookout", "accomplice", 0.6},
		{"getaway", "fleeing", 0.8}, {"getaway", "car", 0.5},
		// Violence cluster.
		{"punch", "violence", 0.8}, {"kick", "violence", 0.75},
		{"attack", "violence", 0.85}, {"aggression", "violence", 0.8},
		{"brawl", "violence", 0.8}, {"struggle", "violence", 0.6},
		{"violence", "danger", 0.75}, {"victim", "injury", 0.6},
		// Fire cluster.
		{"fire", "heat", 0.7}, {"flame", "heat", 0.75},
		{"smoke", "haze", 0.6}, {"blast", "danger", 0.8},
		{"explosion", "fire", 0.6}, {"fireball", "flame", 0.8},
		{"detonation", "blast", 0.85}, {"debris", "destruction", 0.6},
		{"rubble", "destruction", 0.7},
		// Authority cluster.
		{"police", "authority", 0.85}, {"uniform", "authority", 0.6},
		{"siren", "emergency", 0.75}, {"alarm", "emergency", 0.7},
		{"arrest", "crime", 0.5}, {"custody", "authority", 0.6},
		// Scene / misc.
		{"crime", "danger", 0.7}, {"panic", "fear", 0.8},
		{"fleeing", "panic", 0.5}, {"crash", "impact", 0.8},
		{"collision", "impact", 0.85}, {"impact", "danger", 0.6},
		{"night", "darkness", 0.8}, {"intruder", "trespass", 0.8},
		{"breakin", "trespass", 0.75}, {"threat", "intimidation", 0.8},
		{"demand", "threat", 0.6}, {"hostage", "threat", 0.7},
		{"holdup", "threat", 0.65}, {"shouting", "noise", 0.6},
		{"gunshot", "noise", 0.7}, {"graffiti", "paint", 0.7},
		{"spray", "paint", 0.75}, {"smash", "destruction", 0.75},
		{"damage", "destruction", 0.8}, {"store", "storefront", 0.7},
		{"shopping", "store", 0.6}, {"register", "store", 0.6},
		{"mask", "hiding", 0.6}, {"vehicle", "car", 0.8},
		{"traffic", "vehicle", 0.6}, {"skid", "tire", 0.7},
		{"wreckage", "debris", 0.7}, {"injury", "emergency", 0.5},
	}
}
