package edgekg

import (
	"strings"
	"testing"
)

func quickSystem(t *testing.T) *System {
	t.Helper()
	sys, err := NewSystem(Options{Seed: 5, Scale: "quick", TrainSteps: 120})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func trainedSystem(t *testing.T) *System {
	t.Helper()
	sys := quickSystem(t)
	if err := sys.Train("Stealing"); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestMissionsListsUCFCrime(t *testing.T) {
	ms := Missions()
	if len(ms) != 13 {
		t.Fatalf("missions = %d, want 13", len(ms))
	}
	want := map[string]bool{"Stealing": true, "Robbery": true, "Explosion": true}
	for _, m := range ms {
		delete(want, m)
	}
	if len(want) != 0 {
		t.Errorf("missing missions: %v", want)
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Options{Scale: "galactic"}); err == nil {
		t.Error("bogus scale accepted")
	}
	if _, err := NewSystem(Options{}); err != nil {
		t.Errorf("zero options (default quick) rejected: %v", err)
	}
}

func TestLifecycleGuards(t *testing.T) {
	sys := quickSystem(t)
	if err := sys.DeployAdaptive(); err == nil {
		t.Error("deploy before train accepted")
	}
	if _, err := sys.TestAUC("Stealing"); err == nil {
		t.Error("TestAUC before train accepted")
	}
	if _, err := sys.ProcessFrame(make([]float64, sys.FrameSize())); err == nil {
		t.Error("ProcessFrame before deploy accepted")
	}
	if _, err := sys.KG(); err == nil {
		t.Error("KG before train accepted")
	}
	if _, err := sys.InterpretKG(); err == nil {
		t.Error("InterpretKG before train accepted")
	}
	if err := sys.Train("NotAMission"); err == nil {
		t.Error("unknown mission accepted")
	}
	if err := sys.Train("Normal"); err == nil {
		t.Error("Normal as mission accepted")
	}
}

func TestTrainDeployProcess(t *testing.T) {
	sys := trainedSystem(t)
	auc, err := sys.TestAUC("Stealing")
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.7 {
		t.Errorf("trained AUC %v", auc)
	}
	if err := sys.DeployAdaptive(); err != nil {
		t.Fatal(err)
	}
	if !sys.Deployed() {
		t.Error("not deployed")
	}
	frame, err := sys.SynthesizeFrame("Stealing")
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != sys.FrameSize() {
		t.Fatalf("frame size %d", len(frame))
	}
	res, err := sys.ProcessFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score < 0 || res.Score > 1 {
		t.Errorf("score %v", res.Score)
	}
	if _, err := sys.ProcessFrame(frame[:3]); err == nil {
		t.Error("short frame accepted")
	}
	if _, err := sys.SynthesizeFrame("Martians"); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestKGAccessors(t *testing.T) {
	sys := trainedSystem(t)
	st, err := sys.KG()
	if err != nil {
		t.Fatal(err)
	}
	if st.Mission != "Stealing" || st.Nodes < 5 || st.Depth < 1 {
		t.Errorf("stats %+v", st)
	}
	dot, err := sys.KGDOT()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot, "digraph") {
		t.Error("DOT output malformed")
	}
}

func TestInterpretKGInitiallyFaithful(t *testing.T) {
	sys := trainedSystem(t)
	nodes, err := sys.InterpretKG()
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) == 0 {
		t.Fatal("no nodes")
	}
	// Most nodes should decode to their own concept before heavy drift
	// (training with token updates moves them slightly).
	faithful := 0
	for _, n := range nodes {
		if n.Decoded == n.Concept {
			faithful++
		}
	}
	if faithful*2 < len(nodes) {
		t.Errorf("only %d/%d nodes decode to their own concept after training", faithful, len(nodes))
	}
}

func TestStatsAccumulate(t *testing.T) {
	sys := trainedSystem(t)
	if st := sys.Stats(); st.Frames != 0 {
		t.Error("stats before deploy should be zero")
	}
	if err := sys.DeployAdaptive(); err != nil {
		t.Fatal(err)
	}
	frames, err := sys.NextStreamFrames("Robbery", 40, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if _, err := sys.ProcessFrame(f.Frame); err != nil {
			t.Fatal(err)
		}
	}
	st := sys.Stats()
	if st.Frames != 40 {
		t.Errorf("frames = %d", st.Frames)
	}
	if st.ScoringFLOPs <= 0 {
		t.Error("no scoring FLOPs metered")
	}
	if st.AdaptRounds == 0 {
		t.Error("no adaptation rounds at default cadence")
	}
}

func TestDeployStaticNeverAdapts(t *testing.T) {
	sys := trainedSystem(t)
	if err := sys.DeployStatic(); err != nil {
		t.Fatal(err)
	}
	frames, err := sys.NextStreamFrames("Explosion", 40, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		res, err := sys.ProcessFrame(f.Frame)
		if err != nil {
			t.Fatal(err)
		}
		if res.Adapted {
			t.Fatal("static deployment adapted")
		}
	}
	if st := sys.Stats(); st.AdaptRounds != 0 {
		t.Errorf("static stats %+v", st)
	}
}

func TestNextStreamFramesLabels(t *testing.T) {
	sys := quickSystem(t)
	frames, err := sys.NextStreamFrames("Arson", 30, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if !f.Anomalous || f.Class != "Arson" {
			t.Fatalf("rate-1.0 stream emitted %+v", f)
		}
	}
	frames, err = sys.NextStreamFrames("Arson", 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if f.Anomalous || f.Class != "Normal" {
			t.Fatalf("rate-0 stream emitted %+v", f)
		}
	}
	if _, err := sys.NextStreamFrames("Nope", 5, 0.5); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestGenerateKGOnly(t *testing.T) {
	data, err := GenerateKGOnly("Robbery", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "robbery") {
		t.Error("generated KG JSON lacks mission concept")
	}
	if _, err := GenerateKGOnly("Nope", 3); err == nil {
		t.Error("unknown mission accepted")
	}
}

func TestRetrainResetsDeployment(t *testing.T) {
	sys := trainedSystem(t)
	if err := sys.DeployAdaptive(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Train("Robbery"); err != nil {
		t.Fatal(err)
	}
	if sys.Deployed() {
		t.Error("retrain should reset the deployment")
	}
	st, err := sys.KG()
	if err != nil {
		t.Fatal(err)
	}
	if st.Mission != "Robbery" {
		t.Errorf("mission = %s", st.Mission)
	}
}

func TestSystemCheckpointWarmRestart(t *testing.T) {
	const frames = 20
	const split = 9

	// Frame schedule synthesised once, replayed identically by the
	// "restarted process" (same system seed → same synthesis stream).
	mkFrames := func(sys *System) [][]float64 {
		t.Helper()
		out := make([][]float64, frames)
		for i := range out {
			f, err := sys.SynthesizeFrame("Stealing")
			if err != nil {
				t.Fatal(err)
			}
			out[i] = f
		}
		return out
	}

	// Uninterrupted arm.
	sysA := trainedSystem(t)
	if err := sysA.DeployAdaptive(); err != nil {
		t.Fatal(err)
	}
	framesA := mkFrames(sysA)
	var want []float64
	for _, f := range framesA {
		res, err := sysA.ProcessFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res.Score)
	}

	// Interrupted arm: process to the split, checkpoint, discard the
	// system, rebuild from the same options, restore and continue.
	path := t.TempDir() + "/system.json"
	sysB := trainedSystem(t)
	if err := sysB.DeployAdaptive(); err != nil {
		t.Fatal(err)
	}
	if err := sysB.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	framesB := mkFrames(sysB)
	var got []float64
	for _, f := range framesB[:split] {
		res, err := sysB.ProcessFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, res.Score)
	}
	if err := sysB.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}

	sysC := trainedSystem(t)
	if err := sysC.DeployAdaptive(); err != nil {
		t.Fatal(err)
	}
	if err := sysC.LoadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	framesC := mkFrames(sysC)
	for _, f := range framesC[split:] {
		res, err := sysC.ProcessFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, res.Score)
	}

	if len(got) != len(want) {
		t.Fatalf("resumed run scored %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frame %d: resumed score %v != uninterrupted %v", i, got[i], want[i])
		}
	}
	if a, b := sysA.Stats(), sysC.Stats(); a != b {
		t.Fatalf("resumed stats %+v != uninterrupted %+v", b, a)
	}

	// Checkpointing before deployment fails loudly.
	sysD := trainedSystem(t)
	if err := sysD.SaveCheckpoint(path); err == nil {
		t.Error("checkpoint before deployment accepted")
	}
	if err := sysD.LoadCheckpoint(path); err == nil {
		t.Error("restore before deployment accepted")
	}
}
